"""Plan caches for DML statements: shadow read phase plus maintenance columns.

A write statement's cost under an index configuration decomposes as::

    cost = read phase (locate the affected rows)   -- benefits from indexes
         + heap writes                             -- index-independent
         + per-index maintenance                   -- *charged* per index

The read phase of UPDATE/DELETE is exactly a single-table SELECT (the
statement's :meth:`~repro.query.ast.DmlStatement.shadow_query`), so its
plan cache is built by the ordinary INUM/PINUM builders and evaluated by the
ordinary engines -- the whole caching economy (store persistence, process
pools, identical-SQL dedup, memoized what-if probes) applies to writes
unchanged.  The other two terms are computed from catalog statistics by the
:mod:`repro.optimizer.maintenance` model and attached to the cache as its
``maintenance`` profile, which every evaluation engine adds on top of the
read estimate.

INSERT (and the unfiltered DELETE, which reads unconditionally) has no
index-assisted read phase; it gets a *synthetic* cache -- one empty-order
entry, a zero-cost heap column -- so the rest of the stack needs no special
cases: every workload statement owns a cache, every cache compiles.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.index import Index
from repro.inum.access_costs import AccessCostInfo
from repro.inum.cache import CacheEntry, InumCache
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.optimizer.maintenance import MaintenanceProfile, profile_for
from repro.query.ast import DmlStatement


def statement_candidates(
    statement: DmlStatement, candidates: Optional[Sequence[Index]]
) -> Optional[List[Index]]:
    """The candidates relevant to a DML statement: those on its table."""
    if candidates is None:
        return None
    return [index for index in candidates if index.table == statement.table]


def maintenance_profile_for(
    statement: DmlStatement,
    candidates: Optional[Sequence[Index]],
    catalog: Catalog,
    whatif: Optional[object] = None,
) -> MaintenanceProfile:
    """The statement's maintenance profile over ``candidates``.

    Thin wrapper over the canonical
    :func:`repro.optimizer.maintenance.profile_for` that tolerates the
    builders' ``candidates=None`` convention.  Probes go through ``whatif``
    when it is a memoizing what-if layer, so repeated questions across
    builds and pruning passes are free.
    """
    return profile_for(statement, list(candidates or []), catalog, whatif)


def synthetic_statement_cache(statement: DmlStatement, catalog: Catalog) -> InumCache:
    """A cache for a statement with no index-assisted read phase (INSERT).

    One empty-order entry with zero internal cost and no leaf slots, plus a
    zero-cost heap column so :meth:`InumCache.validate` passes: the read
    estimate is always 0 and the statement's whole cost comes from its
    maintenance profile.
    """
    cache = InumCache(statement)
    cache.add_entry(
        CacheEntry(
            ioc=InterestingOrderCombination({statement.table: None}),
            internal_cost=0.0,
            slots=(),
            source="dml",
        )
    )
    cache.access_costs.add(
        AccessCostInfo(
            table=statement.table,
            index_key=None,
            full_cost=0.0,
            probe_cost=None,
            provided_order=None,
            covering=False,
            rows=0.0,
        )
    )
    return cache


def build_statement_cache(
    statement: DmlStatement,
    candidates: Optional[Sequence[Index]],
    catalog: Catalog,
    build_shadow,
    whatif: Optional[object] = None,
) -> InumCache:
    """Build one DML statement's cache with maintenance columns attached.

    ``build_shadow`` is a callable ``(shadow_query, candidates) ->
    InumCache`` -- typically the bound ``build_cache`` of an INUM or PINUM
    builder -- invoked only for statements with a read phase.  The returned
    cache is re-attached to the *statement* (so pools, stores and reports
    key it by the statement's own SQL, which also distinguishes an UPDATE
    from a DELETE sharing the same shadow).
    """
    relevant = statement_candidates(statement, candidates)
    shadow = statement.shadow_query()
    if shadow is None:
        cache = synthetic_statement_cache(statement, catalog)
    else:
        cache = build_shadow(shadow, relevant)
        cache.query = statement
    cache.maintenance = maintenance_profile_for(statement, relevant, catalog, whatif)
    return cache
