"""The access-cost side of the INUM/PINUM cache.

INUM separates a query's cost into the *internal* (join + aggregation) cost
of a cached plan and the *leaf* data-access costs, which vary with the index
configuration being evaluated.  This module stores those leaf costs: for
every (table, index-or-heap) pair the cost of reading the table through that
access method, plus -- for indexes on join columns -- the cost of one
parameterized probe, which is what nested-loop plans multiply by the outer
cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.catalog.index import Index
from repro.optimizer.plan import AccessPath
from repro.util.errors import PlanningError

#: Key identifying an access method: the index's structural key, or ``None``
#: for the table's heap (sequential scan).
AccessKey = Optional[Tuple[str, Tuple[str, ...]]]


@dataclass(frozen=True)
class AccessCostInfo:
    """Cost of reading one table through one access method."""

    table: str
    index_key: AccessKey
    full_cost: float
    probe_cost: Optional[float] = None
    provided_order: Optional[str] = None
    covering: bool = False
    rows: float = 0.0

    @classmethod
    def from_path(cls, path: AccessPath) -> "AccessCostInfo":
        """Convert an optimizer access path into a cache record."""
        return cls(
            table=path.table,
            index_key=path.index.key if path.index is not None else None,
            full_cost=path.cost,
            probe_cost=path.rescan_cost,
            provided_order=path.provided_order,
            covering=path.covering,
            rows=path.rows,
        )

    def covers_order(self, order: Optional[str]) -> bool:
        """Whether this access method provides the interesting order ``order``."""
        if order is None:
            return True
        return self.provided_order == order


class AccessCostTable:
    """All access costs collected for one query."""

    def __init__(self) -> None:
        self._costs: Dict[Tuple[str, AccessKey], AccessCostInfo] = {}

    def add(self, info: AccessCostInfo) -> None:
        """Insert or overwrite the record for ``(info.table, info.index_key)``."""
        self._costs[(info.table, info.index_key)] = info

    def add_path(self, path: AccessPath) -> None:
        """Convenience: convert and insert an optimizer access path."""
        self.add(AccessCostInfo.from_path(path))

    def __len__(self) -> int:
        return len(self._costs)

    # -- lookups ---------------------------------------------------------------

    def heap(self, table: str) -> AccessCostInfo:
        """The sequential-scan record of ``table``."""
        try:
            return self._costs[(table, None)]
        except KeyError:
            raise PlanningError(
                f"access-cost table has no sequential-scan entry for {table!r}"
            ) from None

    def has_heap(self, table: str) -> bool:
        """Whether the sequential-scan record of ``table`` is present."""
        return (table, None) in self._costs

    def for_index(self, index: Index) -> Optional[AccessCostInfo]:
        """The record of ``index``, or ``None`` if it was never collected."""
        return self._costs.get((index.table, index.key))

    def entries_for_table(self, table: str) -> List[AccessCostInfo]:
        """Every collected record for ``table``."""
        return [info for (t, _), info in self._costs.items() if t == table]

    def best_access(
        self,
        table: str,
        index: Optional[Index],
        required_order: Optional[str],
    ) -> Optional[AccessCostInfo]:
        """Cheapest usable access for ``table`` under an atomic configuration.

        ``index`` is the configuration's index on the table (or ``None``).
        When an order is required, only an index covering that order
        qualifies; with no required order the cheaper of the heap scan and
        the configuration's index (if collected) is returned.  ``None`` means
        the requirement cannot be satisfied by this configuration.
        """
        candidates: List[AccessCostInfo] = []
        if required_order is None and self.has_heap(table):
            candidates.append(self.heap(table))
        if index is not None:
            info = self.for_index(index)
            if info is not None and info.covers_order(required_order):
                candidates.append(info)
        if not candidates:
            return None
        return min(candidates, key=lambda info: info.full_cost)

    def tables(self) -> List[str]:
        """Tables that have at least one record."""
        return sorted({table for table, _ in self._costs})
