"""The plan cache shared by INUM and PINUM.

A cache holds, for one query:

* one :class:`CacheEntry` per interesting-order combination -- the plan's
  internal (join + aggregation) cost plus a description of its leaf slots
  (which table is read, which order the access path must provide and how
  often the leaf is executed), and
* an :class:`~repro.inum.access_costs.AccessCostTable` with the data-access
  costs of every candidate index and of the bare heaps.

Both INUM and PINUM produce exactly this structure; they only differ in how
many optimizer calls it takes to fill it, which is what
:class:`CacheBuildStatistics` records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.inum.access_costs import AccessCostTable
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.optimizer.maintenance import MaintenanceProfile
from repro.optimizer.plan import PlanNode, PlanSummary
from repro.query.ast import Query
from repro.util.errors import PlanningError


@dataclass(frozen=True)
class CachedSlot:
    """One leaf of a cached plan, described symbolically.

    ``required_order`` is the interesting order the slot's access path must
    provide (``None`` = any access works).  ``multiplier`` and
    ``parameterized`` describe nested-loop inners, which are probed once per
    outer row instead of scanned once.
    """

    table: str
    required_order: Optional[str]
    multiplier: float = 1.0
    parameterized: bool = False


@dataclass
class CacheEntry:
    """One cached plan: its internal cost plus symbolic leaf slots."""

    ioc: InterestingOrderCombination
    internal_cost: float
    slots: Tuple[CachedSlot, ...]
    uses_nestloop: bool = False
    source: str = "inum"
    plan: Optional[PlanNode] = None
    summary: Optional[PlanSummary] = None

    @classmethod
    def from_plan(
        cls,
        plan: PlanNode,
        orders_by_table: Dict[str, List[str]],
        source: str,
    ) -> "CacheEntry":
        """Digest an optimizer plan into a cache entry.

        The entry is keyed by the plan's *normalized* interesting-order
        combination (orders the leaves provide, restricted to orders that are
        interesting for the query), and each leaf slot requires exactly the
        order its access path provided.  Plans produced by different probing
        configurations but with identical structure therefore collapse onto
        the same entry -- the redundancy Section IV quantifies.
        """
        slots = []
        orders: Dict[str, Optional[str]] = {}
        for slot in plan.leaf_slots():
            provided = slot.path.provided_order
            if provided is not None and provided not in orders_by_table.get(slot.table, []):
                provided = None
            orders[slot.table] = provided
            slots.append(
                CachedSlot(
                    table=slot.table,
                    required_order=provided,
                    multiplier=slot.multiplier,
                    parameterized=slot.parameterized,
                )
            )
        return cls(
            ioc=InterestingOrderCombination(orders),
            internal_cost=plan.internal_cost(),
            slots=tuple(slots),
            uses_nestloop=plan.uses_nested_loop(),
            source=source,
            plan=plan,
            summary=PlanSummary.of(plan),
        )


@dataclass
class CacheBuildStatistics:
    """How expensive it was to build one query's cache.

    ``optimizer_calls_*`` count *actual* optimizer invocations.  When the
    builder routes its probes through a memoizing
    :class:`~repro.optimizer.whatif.WhatIfCallCache`, probes answered from
    memory are counted in ``whatif_cache_hits`` instead (and
    ``whatif_cache_misses`` mirrors the actual calls made through the cache).
    """

    optimizer_calls_plans: int = 0
    optimizer_calls_access_costs: int = 0
    seconds_plans: float = 0.0
    seconds_access_costs: float = 0.0
    combinations_enumerated: int = 0
    entries_cached: int = 0
    unique_plans: int = 0
    whatif_cache_hits: int = 0
    whatif_cache_misses: int = 0

    @property
    def optimizer_calls_total(self) -> int:
        """All optimizer calls spent building this cache."""
        return self.optimizer_calls_plans + self.optimizer_calls_access_costs

    @property
    def seconds_total(self) -> float:
        """All wall-clock seconds spent building this cache."""
        return self.seconds_plans + self.seconds_access_costs

    @property
    def whatif_requests(self) -> int:
        """What-if probes issued (optimizer calls plus memoized hits)."""
        return self.optimizer_calls_total + self.whatif_cache_hits

    @property
    def whatif_hit_rate(self) -> float:
        """Fraction of what-if probes answered without an optimizer call."""
        if not self.whatif_requests:
            return 0.0
        return self.whatif_cache_hits / self.whatif_requests

class InumCache:
    """The per-statement plan cache.

    ``query`` is usually a SELECT :class:`~repro.query.ast.Query`; for a DML
    statement it is the statement itself (the entries then describe the
    statement's *shadow* read phase) and ``maintenance`` carries the
    per-candidate-index maintenance-cost columns the evaluation engines add
    on top of the read estimate.  Pure-read caches keep ``maintenance`` as
    ``None`` and behave exactly as before.
    """

    def __init__(self, query: Query) -> None:
        self.query = query
        self.entries: List[CacheEntry] = []
        self.access_costs = AccessCostTable()
        self.build_stats = CacheBuildStatistics()
        #: Per-index write costs for DML statements (None for read caches).
        self.maintenance: Optional[MaintenanceProfile] = None
        self._by_ioc: Dict[InterestingOrderCombination, CacheEntry] = {}

    # -- population -------------------------------------------------------------

    def add_entry(self, entry: CacheEntry) -> None:
        """Add a cached plan.

        Per interesting-order combination the cache keeps at most one plan
        without nested loops and one with (the NLJ variant becomes optimal at
        low access costs, see Section V-D); re-adding a cheaper plan for the
        same (IOC, NLJ-usage) pair replaces the existing one.  The canonical
        per-IOC entry (used by :meth:`entry_for`) prefers the NLJ-free plan.
        """
        for position, existing in enumerate(self.entries):
            if existing.ioc == entry.ioc and existing.uses_nestloop == entry.uses_nestloop:
                if entry.internal_cost < existing.internal_cost:
                    self.entries[position] = entry
                    if self._by_ioc.get(entry.ioc) is existing:
                        self._by_ioc[entry.ioc] = entry
                return
        self.entries.append(entry)
        incumbent = self._by_ioc.get(entry.ioc)
        if incumbent is None or (incumbent.uses_nestloop and not entry.uses_nestloop):
            self._by_ioc[entry.ioc] = entry

    def entry_for(self, ioc: InterestingOrderCombination) -> Optional[CacheEntry]:
        """The canonical entry cached for ``ioc`` (if any)."""
        return self._by_ioc.get(ioc)

    def detached_copy(self) -> "InumCache":
        """A shallow copy sharing this cache's immutable build artifacts.

        Entries, access costs and build statistics are shared by reference
        (they never change after a build); the copy can take its *own*
        ``maintenance`` profile without touching the original.  Sessions
        over a :class:`~repro.api.tier.SharedCacheTier` detach DML caches
        this way before applying their pool-specific maintenance, so the
        shared object stays pristine for every other tenant.
        """
        clone = InumCache(self.query)
        clone.entries = self.entries
        clone.access_costs = self.access_costs
        clone.build_stats = self.build_stats
        clone.maintenance = self.maintenance
        clone._by_ioc = self._by_ioc
        return clone

    # -- inspection ---------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of cached plans (including nested-loop variants)."""
        return len(self.entries)

    @property
    def combination_count(self) -> int:
        """Number of distinct IOCs that have at least one entry."""
        return len(self._by_ioc)

    def unique_plan_count(self) -> int:
        """Number of structurally distinct plans in the cache.

        Section IV's observation: for TPC-H query 5, 648 optimizer calls
        produce only 64 unique plans -- 90 % of the calls were redundant.
        """
        keys = set()
        for entry in self.entries:
            if entry.summary is not None:
                keys.add(entry.summary.structural_key())
        return len(keys)

    def validate(self) -> None:
        """Sanity-check the cache before it is used for estimation."""
        if not self.entries:
            raise PlanningError(f"cache for query {self.query.name!r} is empty")
        for table in self.query.tables:
            if not self.access_costs.has_heap(table):
                raise PlanningError(
                    f"cache for query {self.query.name!r} has no heap access cost "
                    f"for table {table!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InumCache({self.query.name!r}, entries={self.entry_count}, "
            f"access_costs={len(self.access_costs)})"
        )
