"""Command-line interface for the PINUM reproduction.

The CLI is a thin client of the session API (:mod:`repro.api.session`): each
subcommand creates a :class:`~repro.api.session.TuningSession` over the
requested catalog and drives it, so the CLI and library share one
implementation:

* ``explain``        -- optimize a SQL query and print the plan,
* ``recommend``      -- run the index advisor over a workload
  (``--selector`` picks the exhaustive greedy loop, the CELF-style lazy
  loop or the ILP solver -- ``--selector ilp`` proves optimality within
  ``--gap``/``--time-limit``; ``--engine`` picks the cache evaluation
  engine -- compiled/vectorized by default, ``scalar`` for the original
  per-slot walk),
* ``cache``          -- build the INUM/PINUM plan cache for a query and
  report its statistics (optionally saving it to JSON),
* ``cache-workload`` -- build the plan caches of a whole workload at once
  through the :class:`~repro.inum.workload_builder.WorkloadCacheBuilder`:
  ``--jobs N`` fans the per-query builds across a process pool, the
  memoizing what-if layer deduplicates identical optimizer probes, and
  ``--cache-dir`` persists the caches for later runs,
* ``serve``          -- the long-lived tuning service: newline-delimited
  JSON requests on stdin, responses on stdout, one warm session per catalog
  (see :mod:`repro.api.serve` for the protocol),
* ``watch``          -- the online self-tuning daemon: tail an NDJSON
  statement feed (``--follow trace.ndjson``), fold it into a sliding
  window, and re-tune the index configuration when the template mix
  drifts -- re-tunes are warm (delta cache builds only) and gated by
  transition costing (see :mod:`repro.online`).  Decisions stream to
  stdout as NDJSON events,
* ``metrics``        -- dump the process-wide metrics registry
  (:mod:`repro.obs`) as Prometheus text exposition or JSON, either for
  this process or scraped from a running ``serve --tcp`` server.

``recommend`` and ``watch`` accept ``--trace-out FILE`` to append every
recorded span tree as NDJSON (one span per line, children linked by
``parent_id``); ``serve --tcp --access-log`` logs one structured line per
request to stderr.

Examples::

    python -m repro explain --catalog tpch --sql \
        "SELECT nation.n_name FROM nation, region \
         WHERE nation.n_regionkey = region.r_regionkey ORDER BY nation.n_name"

    python -m repro recommend --catalog star --budget-gb 5 --max-candidates 120
    python -m repro cache --catalog star --query-number 4 --builder pinum
    python -m repro cache-workload --catalog star --jobs 4 --cache-dir .inum-cache
    echo '{"op": "recommend"}' | python -m repro serve --catalog tpch
    python -m repro watch --catalog star --follow trace.ndjson --idle-exit 5

The ``--cache-dir`` directory is a versioned
:class:`~repro.inum.serialization.CacheStore`::

    .inum-cache/
      <catalog fingerprint>/             one directory per catalog state
        <query fingerprint>.<builder>.json

Cache files are keyed by *fingerprints* of the catalog (schema, statistics,
permanent indexes) and of the query's canonical SQL, and each file records a
digest of the candidate-index set its access costs were collected for.
Changing the schema, refreshing statistics or changing the candidate set
makes the affected caches stale, so they are rebuilt instead of reused; a
second run of the *same* command against an unchanged catalog loads every
cache and spends zero optimizer calls.  ``recommend`` accepts the same
``--jobs``/``--cache-dir`` flags for its cache-backed cost models;
``recommend`` and ``cache-workload`` share one ``--max-candidates`` default
(:data:`~repro.advisor.candidates.DEFAULT_MAX_CANDIDATES`), so with the same
``--cache-dir`` they hit the same persistent cache keys out of the box.
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import json
import sys
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.advisor import AdvisorOptions, CandidateGenerator
from repro.advisor.candidates import DEFAULT_MAX_CANDIDATES
from repro.api.serve import ServeFrontend
from repro.api.session import TuningSession
from repro.bench.harness import ExperimentTable
from repro.inum.serialization import save_cache
from repro.query import Query, parse_statement
from repro.util.errors import AdvisorError, ReproError
from repro.util.units import format_bytes, gigabytes
from repro.workloads import StarSchemaWorkload, build_tpch_like_catalog, builtin_catalog_factory


def _load_catalog(name: str, seed: int) -> tuple:
    """Return ``(catalog, builtin workload queries)`` for a built-in catalog."""
    if name == "star":
        workload = StarSchemaWorkload(seed=seed)
        return workload.catalog(), workload.queries()
    if name == "tpch":
        from repro.workloads.tpch_like import tpch_q5_like_query, tpch_small_join_query

        return build_tpch_like_catalog(), [tpch_q5_like_query(), tpch_small_join_query()]
    raise ReproError(f"unknown catalog {name!r} (expected 'star' or 'tpch')")


def _read_queries(args: argparse.Namespace, builtin: Sequence[Query]) -> List[Query]:
    """Statements from --sql/--sql-file, falling back to the built-in workload.

    Both flags accept DML (INSERT/UPDATE/DELETE) next to SELECT, so a
    ';'-separated file can describe a whole mixed read/write workload.
    """
    if getattr(args, "sql", None):
        return [parse_statement(args.sql, name="cli_query")]
    if getattr(args, "sql_file", None):
        with open(args.sql_file, "r", encoding="utf-8") as handle:
            text = handle.read()
        statements = [stmt.strip() for stmt in text.split(";") if stmt.strip()]
        return [parse_statement(stmt, name=f"file_q{i + 1}") for i, stmt in enumerate(statements)]
    if getattr(args, "query_number", None):
        return [builtin[args.query_number - 1]]
    return list(builtin)


def _parse_weights(pairs: Optional[Sequence[str]]) -> Optional[dict]:
    """``--weight name=2.0`` occurrences into a statement-weight mapping."""
    if not pairs:
        return None
    weights = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise ReproError(
                f"--weight expects NAME=WEIGHT, got {pair!r}"
            )
        try:
            weights[name] = float(value)
        except ValueError:
            raise ReproError(
                f"--weight {pair!r}: weight must be a number"
            ) from None
    return weights


def _ilp_overrides(args: argparse.Namespace) -> dict:
    """``--gap``/``--time-limit`` as AdvisorOptions overrides (when given)."""
    overrides = {}
    if getattr(args, "gap", None) is not None:
        overrides["ilp_gap"] = args.gap
    if getattr(args, "time_limit", None) is not None:
        overrides["ilp_time_limit"] = args.time_limit
    return overrides


def _build_session(args: argparse.Namespace, options: AdvisorOptions) -> TuningSession:
    """A session over the requested catalog, loaded with the requested queries."""
    catalog, builtin = _load_catalog(args.catalog, args.seed)
    queries = _read_queries(args, builtin)
    return TuningSession(
        catalog,
        queries,
        options=options,
        catalog_factory=functools.partial(builtin_catalog_factory, args.catalog, args.seed),
    )


@contextlib.contextmanager
def _trace_to_file(path: str) -> Iterator[None]:
    """Append every root span finished inside the block to ``path`` as NDJSON."""
    from repro.obs import get_tracer, write_spans_ndjson

    tracer = get_tracer()
    handle = open(path, "a", encoding="utf-8")

    def sink(span) -> None:
        write_spans_ndjson(span, handle)
        handle.flush()

    tracer.add_sink(sink)
    try:
        yield
    finally:
        tracer.remove_sink(sink)
        handle.close()


# -- subcommands ------------------------------------------------------------------


def _cmd_explain(args: argparse.Namespace) -> int:
    session = _build_session(args, AdvisorOptions())
    from repro.api.requests import ExplainRequest

    for query in session.queries:
        response = session.explain(
            ExplainRequest(query=query.name, disable_nestloop=args.disable_nestloop)
        )
        print(f"-- {response.query_name}")
        print(response.sql)
        print()
        print(response.plan)
        print(f"estimated cost: {response.cost:,.2f}")
        print()
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    weights = _parse_weights(args.weight)
    session = _build_session(
        args,
        AdvisorOptions(
            space_budget_bytes=gigabytes(args.budget_gb),
            cost_model=args.cost_model,
            max_candidates=args.max_candidates,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            selector=args.selector,
            engine=args.engine,
            candidate_policy=args.candidate_policy,
            compress=getattr(args, "compress", False),
            statement_weights=weights,
            **_ilp_overrides(args),
        ),
    )
    queries = session.queries
    if weights:
        # The workload is fully known here, so a typo'd --weight name must
        # fail loudly instead of silently pricing the workload without it.
        unknown = sorted(set(weights) - {query.name for query in queries})
        if unknown:
            raise ReproError(
                f"--weight names unknown statements: {', '.join(unknown)} "
                f"(workload: {', '.join(query.name for query in queries)})"
            )
    if args.trace_out:
        from repro.api.requests import RecommendRequest

        with _trace_to_file(args.trace_out):
            result = session.recommend(RecommendRequest(trace=True)).result
    else:
        result = session.recommend().result
    print(f"workload          : {len(queries)} queries over catalog {args.catalog!r}")
    print(f"database size     : {format_bytes(session.catalog.database_size_bytes())}")
    print(f"cache preparation : {result.preparation_optimizer_calls} optimizer calls "
          f"({result.preparation_seconds:.2f}s, cost model {args.cost_model!r})")
    print(f"index selection   : {result.selection_candidate_evaluations} candidate / "
          f"{result.selection_query_evaluations} query evaluations "
          f"({result.selection_seconds:.2f}s, selector {result.selector!r}, "
          f"engine {result.engine!r})")
    print()
    print(result.summary())

    table = ExperimentTable(
        "Per-query estimated cost",
        ["query", "before", "after", "improvement"],
    )
    # Iterate the result's own keys: a --compress run tunes the folded view,
    # so its per-query rows are templates, not the raw workload statements.
    for name in result.per_query_cost_before:
        before = result.per_query_cost_before[name]
        after = result.per_query_cost_after[name]
        improvement = 0.0 if before == 0 else 100.0 * (1 - after / before)
        table.add_row(name, before, after, f"{improvement:.1f}%")
    table.print()
    if args.trace_out:
        print(f"trace             : spans appended to {args.trace_out}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    session = _build_session(args, AdvisorOptions())
    generator = CandidateGenerator(session.catalog)
    table = ExperimentTable(
        f"Plan-cache construction ({args.builder})",
        ["query", "IOCs enumerated/kept", "optimizer calls", "cached plans",
         "access costs", "build (ms)"],
    )
    for query in session.queries:
        cache = session.build_query_cache(
            query, args.builder, candidates=generator.for_query(query)
        )
        stats = cache.build_stats
        table.add_row(
            query.name, stats.combinations_enumerated, stats.optimizer_calls_total,
            cache.entry_count, len(cache.access_costs), stats.seconds_total * 1000,
        )
        if args.save:
            path = f"{args.save}.{query.name}.json"
            save_cache(cache, path)
            print(f"saved cache for {query.name} to {path}")
    table.print()
    return 0


def _cmd_cache_workload(args: argparse.Namespace) -> int:
    session = _build_session(
        args,
        AdvisorOptions(
            max_candidates=args.max_candidates,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
        ),
    )
    queries = session.queries
    result = session.build_workload_caches(
        args.builder,
        jobs=args.jobs,
        use_call_cache=not args.no_call_cache,
    )
    report = result.report

    table = ExperimentTable(
        f"Workload cache construction ({args.builder}, jobs={args.jobs})",
        ["query", "source", "optimizer calls", "what-if hits",
         "cached plans", "access costs", "build (ms)"],
    )
    for query in queries:
        outcome = report.outcome_for(query.name)
        cache = result.caches[query.name]
        source = outcome.source
        if outcome.deduped_from is not None:
            source = f"deduplicated ({outcome.deduped_from})"
        calls = outcome.stats.optimizer_calls_total if outcome.source == "built" else 0
        hits = outcome.stats.whatif_cache_hits if outcome.source == "built" else 0
        table.add_row(
            query.name, source, calls, hits,
            cache.entry_count, len(cache.access_costs),
            outcome.stats.seconds_total * 1000 if outcome.source == "built" else 0.0,
        )
    table.print()

    print(f"workload        : {report.queries_total} queries "
          f"({report.queries_built} built, {report.queries_from_store} from store, "
          f"{report.queries_deduplicated} deduplicated)")
    print(f"optimizer calls : {report.optimizer_calls}")
    print(f"what-if cache   : {report.whatif_cache_hits} hits "
          f"({report.whatif_hit_rate * 100.0:.1f}% of probes)")
    print(f"wall clock      : {report.wall_seconds:.2f}s "
          f"(per-query build time {report.build_seconds:.2f}s)")
    store = session.store
    if store is not None:
        line = (f"cache store     : {store.catalog_dir} "
                f"({store.stored_count()} caches, {store.statistics.saves} saved this run")
        if store.statistics.stale_rejections:
            line += f", {store.statistics.stale_rejections} stale rejected"
        print(line + ")")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.online import FileTailSource, OnlineTuner, OnlineTunerConfig

    options = AdvisorOptions(
        space_budget_bytes=gigabytes(args.budget_gb),
        cost_model=args.cost_model,
        max_candidates=args.max_candidates,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        selector=args.selector,
        engine=args.engine,
        candidate_policy=args.candidate_policy,
        **_ilp_overrides(args),
    )
    # The daemon owns the workload: the session starts empty and receives
    # the window's templates at the first (bootstrap) tune.
    catalog, _ = _load_catalog(args.catalog, args.seed)
    session = TuningSession(
        catalog,
        [],
        options=options,
        catalog_factory=functools.partial(builtin_catalog_factory, args.catalog, args.seed),
    )
    overrides = {
        key: value
        for key, value in (
            ("window_statements", args.window),
            ("drift_metric", args.metric),
            ("drift_high_water", args.high_water),
            ("drift_low_water", args.low_water),
            ("horizon_statements", args.horizon),
            ("poll_interval_seconds", args.poll_interval),
            # --trace-out turns on per-poll root spans; the sink below
            # appends them to the file as each poll finishes.
            ("trace", True if args.trace_out else None),
        )
        if value is not None
    }
    config = OnlineTunerConfig(**overrides)
    source = FileTailSource(args.follow, start_at_end=not args.from_start)
    tuner = OnlineTuner(session, source, config)

    def emit(event: dict) -> None:
        print(json.dumps(event), flush=True)

    emit({"event": "watching", "follow": args.follow, "catalog": args.catalog,
          "config": config.to_dict()})
    with contextlib.ExitStack() as stack:
        if args.trace_out:
            stack.enter_context(_trace_to_file(args.trace_out))
        try:
            tuner.run(max_polls=args.max_polls, idle_exit_seconds=args.idle_exit,
                      on_event=emit)
        except KeyboardInterrupt:  # pragma: no cover - interactive use
            pass
    emit({"event": "final", **tuner.statistics.to_dict()})
    return 0


def _parse_tcp_endpoint(value: str) -> Tuple[str, int]:
    """Split ``HOST:PORT`` (``:PORT`` defaults the host to localhost)."""
    host, separator, port_text = value.rpartition(":")
    if not separator or not port_text.isdigit():
        raise AdvisorError(
            f"--tcp expects HOST:PORT (e.g. 127.0.0.1:7683), got {value!r}"
        )
    return host or "127.0.0.1", int(port_text)


def _cmd_serve(args: argparse.Namespace) -> int:
    options = AdvisorOptions(
        space_budget_bytes=gigabytes(args.budget_gb),
        cost_model=args.cost_model,
        max_candidates=args.max_candidates,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        selector=args.selector,
        engine=args.engine,
        candidate_policy=args.candidate_policy,
        statement_weights=_parse_weights(args.weight),
        **_ilp_overrides(args),
    )
    if args.tcp is not None:
        import asyncio

        from repro.api.server import TuningServer

        host, port = _parse_tcp_endpoint(args.tcp)
        server = TuningServer(
            host,
            port,
            default_catalog=args.catalog,
            seed=args.seed,
            options=options,
            workers=args.workers,
            access_log=args.access_log,
        )

        def announce(event: dict) -> None:
            print(json.dumps(event), flush=True)

        asyncio.run(server.run(announce))
        return 0
    if args.access_log:
        raise AdvisorError("--access-log requires the --tcp transport")
    frontend = ServeFrontend(
        default_catalog=args.catalog,
        seed=args.seed,
        options=options,
    )
    return frontend.serve(sys.stdin, sys.stdout)


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.tcp is not None:
        import socket

        host, port = _parse_tcp_endpoint(args.tcp)
        request = json.dumps(
            {"id": 1, "op": "metrics", "params": {"format": args.format}}
        )
        with socket.create_connection((host, port), timeout=30.0) as connection:
            connection.sendall((request + "\n").encode("utf-8"))
            with connection.makefile("r", encoding="utf-8") as reader:
                line = reader.readline()
        if not line:
            raise ReproError(f"metrics server at {args.tcp} closed without answering")
        response = json.loads(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ReproError(
                f"metrics request failed: {error.get('message', response)}"
            )
        result = response["result"]
    else:
        # Importing the catalog registers every family the stack declares,
        # so even a fresh process renders the full HELP/TYPE inventory.
        import repro.obs.instruments  # noqa: F401
        from repro.obs import render_prometheus, snapshot

        if args.format == "prometheus":
            result = {"format": "prometheus", "exposition": render_prometheus()}
        else:
            result = {"format": "json", **snapshot()}
    if result.get("format") == "prometheus":
        sys.stdout.write(result["exposition"])
    else:
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


# -- argument parsing ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PINUM reproduction: optimizer, plan caches and index advisor.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--catalog", choices=["star", "tpch"], default="star",
                         help="built-in catalog to run against")
        sub.add_argument("--seed", type=int, default=7, help="workload generator seed")
        sub.add_argument("--sql", help="a single SQL query text")
        sub.add_argument("--sql-file", help="file with ';'-separated SQL queries")
        sub.add_argument("--query-number", type=int,
                         help="pick one query of the built-in workload (1-based)")

    def add_tuning_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--budget-gb", type=float, default=5.0,
                         help="index space budget in GiB (paper: 5)")
        sub.add_argument("--cost-model", choices=["pinum", "inum", "optimizer"],
                         default="pinum", help="benefit oracle for the greedy search")
        sub.add_argument("--max-candidates", type=int, default=DEFAULT_MAX_CANDIDATES,
                         help="cap on the candidate-index set (shared default with "
                              "cache-workload so both hit the same cache-store keys)")
        sub.add_argument("--jobs", type=int, default=1,
                         help="process-pool width for the per-query cache builds")
        sub.add_argument("--cache-dir",
                         help="persistent cache-store directory reused across runs")
        sub.add_argument("--selector", choices=["exhaustive", "lazy", "ilp"],
                         default="lazy",
                         help="index-selection search: the paper's exhaustive greedy "
                              "loop, the CELF-style lazy loop (identical picks, far "
                              "fewer evaluations) or the CoPhy-style ILP solver "
                              "(provably optimal within --gap/--time-limit, never "
                              "worse than lazy)")
        sub.add_argument("--gap", type=float, default=None, metavar="FRACTION",
                         help="relative optimality gap the ilp selector may stop at "
                              "(default 0: prove optimality)")
        sub.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                         help="wall-clock budget for the ilp solver; on expiry the "
                              "best selection found so far is returned with its "
                              "proven gap (default 60)")
        sub.add_argument("--engine",
                         choices=["auto", "arena", "numpy", "python", "scalar"],
                         default="auto",
                         help="cache evaluation engine: compiled (numpy-vectorized "
                              "when available), the fused workload arena, or the "
                              "original scalar walk")
        sub.add_argument("--candidate-policy", choices=["workload", "per_query"],
                         default="workload",
                         help="candidate generation: one workload-wide pool (the "
                              "paper's arrangement) or per-query candidate sets "
                              "(incremental re-tuning on workload changes)")
        sub.add_argument("--weight", action="append", metavar="NAME=WEIGHT",
                         help="execution-frequency weight for one statement "
                              "(repeatable); mixed read/write workloads use this "
                              "to scale index-maintenance charges")

    explain = subparsers.add_parser("explain", help="optimize a query and print its plan")
    add_common(explain)
    explain.add_argument("--disable-nestloop", action="store_true",
                         help="plan without nested-loop joins (enable_nestloop=off)")
    explain.set_defaults(handler=_cmd_explain)

    recommend = subparsers.add_parser("recommend", help="run the greedy index advisor")
    add_common(recommend)
    add_tuning_options(recommend)
    recommend.add_argument("--compress", action="store_true",
                           help="fold the workload by statement template before "
                                "tuning: one weighted representative per template "
                                "(literals -> parameter markers), so a large trace "
                                "costs one cache build per distinct template")
    recommend.add_argument("--trace-out", metavar="FILE", default=None,
                           help="record a span trace of the recommend call and "
                                "append it to FILE as NDJSON (one span per line, "
                                "children linked by parent_id)")
    recommend.set_defaults(handler=_cmd_recommend)

    cache = subparsers.add_parser("cache", help="build a plan cache and report statistics")
    add_common(cache)
    cache.add_argument("--builder", choices=["pinum", "inum"], default="pinum",
                       help="which builder fills the cache")
    cache.add_argument("--save", help="path prefix for saving the cache(s) as JSON")
    cache.set_defaults(handler=_cmd_cache)

    workload = subparsers.add_parser(
        "cache-workload",
        help="build every workload query's plan cache (parallel, memoized, persistent)",
    )
    add_common(workload)
    workload.add_argument("--builder", choices=["pinum", "inum"], default="pinum",
                          help="which per-query builder fills the caches")
    workload.add_argument("--max-candidates", type=int, default=DEFAULT_MAX_CANDIDATES,
                          help="cap on the candidate-index set (shared default with "
                               "recommend so both hit the same cache-store keys)")
    workload.add_argument("--jobs", type=int, default=1,
                          help="process-pool width (1 = serial with a shared what-if cache)")
    workload.add_argument("--cache-dir",
                          help="persistent cache-store directory reused across runs")
    workload.add_argument("--no-call-cache", action="store_true",
                          help="disable the memoizing what-if layer (baseline behaviour)")
    workload.set_defaults(handler=_cmd_cache_workload)

    serve = subparsers.add_parser(
        "serve",
        help="serve tuning requests as newline-delimited JSON over stdin/stdout",
    )
    serve.add_argument("--catalog", choices=["star", "tpch"], default="star",
                       help="default catalog served (requests may name others)")
    serve.add_argument("--seed", type=int, default=7, help="workload generator seed")
    transport = serve.add_mutually_exclusive_group()
    transport.add_argument(
        "--stdio", action="store_true",
        help="serve one client over stdin/stdout (the default transport)")
    transport.add_argument(
        "--tcp", metavar="HOST:PORT", default=None,
        help="serve many concurrent clients over TCP (port 0 binds an "
             "ephemeral port, announced as a JSON line on stdout); sessions "
             "share one read-only cache tier")
    serve.add_argument(
        "--workers", type=int, default=None,
        help="thread-pool size for --tcp (cross-session parallelism cap)")
    serve.add_argument(
        "--access-log", action="store_true",
        help="with --tcp: log one structured JSON line per request to stderr "
             "(session_id, op, status, duration_ms, trace_id)")
    add_tuning_options(serve)
    serve.set_defaults(handler=_cmd_serve)

    watch = subparsers.add_parser(
        "watch",
        help="tail an NDJSON statement feed and re-tune on workload drift",
    )
    watch.add_argument("--catalog", choices=["star", "tpch"], default="star",
                       help="built-in catalog the feed's statements run against")
    watch.add_argument("--seed", type=int, default=7, help="workload generator seed")
    watch.add_argument("--follow", required=True, metavar="FILE",
                       help="NDJSON statement feed to tail (may not exist yet)")
    watch.add_argument("--from-start", action="store_true",
                       help="replay the file's existing content before tailing "
                            "(default: watch new lines only)")
    # Daemon knob defaults live on OnlineTunerConfig; None = not overridden.
    watch.add_argument("--window", type=int, default=None, metavar="N",
                       help="sliding-window size in statements (default 200)")
    watch.add_argument("--metric", choices=["total_variation", "jensen_shannon"],
                       default=None,
                       help="drift metric between the reference and current "
                            "template distributions (default total_variation)")
    watch.add_argument("--high-water", type=float, default=None, metavar="DRIFT",
                       help="fire a re-tune when drift exceeds this (default 0.35)")
    watch.add_argument("--low-water", type=float, default=None, metavar="DRIFT",
                       help="re-arm the detector when drift falls below this "
                            "(default 0.15)")
    watch.add_argument("--horizon", type=int, default=None, metavar="STATEMENTS",
                       help="future executions a new configuration may amortize "
                            "its index builds over (default 10000)")
    watch.add_argument("--poll-interval", type=float, default=None, metavar="SECONDS",
                       help="how often to poll the feed (default 0.25)")
    watch.add_argument("--max-polls", type=int, default=None,
                       help="stop after this many polls (default: run until "
                            "interrupted or idle)")
    watch.add_argument("--idle-exit", type=float, default=None, metavar="SECONDS",
                       help="exit after this long without new statements "
                            "(default: keep waiting)")
    watch.add_argument("--trace-out", metavar="FILE", default=None,
                       help="record a span trace of every poll cycle and append "
                            "it to FILE as NDJSON")
    add_tuning_options(watch)
    # A watched session's workload churns template-by-template; per_query
    # keeps every re-tune's cache builds to exactly the never-seen delta.
    watch.set_defaults(handler=_cmd_watch, candidate_policy="per_query")

    metrics = subparsers.add_parser(
        "metrics",
        help="dump the process-wide metrics registry (Prometheus text or JSON)",
    )
    metrics.add_argument("--format", choices=["prometheus", "json"],
                         default="prometheus",
                         help="Prometheus text exposition (default) or the JSON "
                              "snapshot with interpolated histogram quantiles")
    metrics.add_argument("--tcp", metavar="HOST:PORT", default=None,
                         help="scrape a running 'repro serve --tcp' server "
                              "instead of this (fresh) process")
    metrics.set_defaults(handler=_cmd_metrics)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
