"""Command-line interface for the PINUM reproduction.

The CLI exposes the library's main workflows over the built-in workload
catalogs, so experiments can be driven without writing Python:

* ``explain``        -- optimize a SQL query and print the plan,
* ``recommend``      -- run the greedy index advisor over a workload
  (``--selector`` picks the exhaustive or the CELF-style lazy loop,
  ``--engine`` picks the cache evaluation engine -- compiled/vectorized by
  default, ``scalar`` for the original per-slot walk),
* ``cache``          -- build the INUM/PINUM plan cache for a query and
  report its statistics (optionally saving it to JSON),
* ``cache-workload`` -- build the plan caches of a whole workload at once
  through the :class:`~repro.inum.workload_builder.WorkloadCacheBuilder`:
  ``--jobs N`` fans the per-query builds across a process pool, the
  memoizing what-if layer deduplicates identical optimizer probes, and
  ``--cache-dir`` persists the caches for later runs.

Examples::

    python -m repro explain --catalog tpch --sql \
        "SELECT nation.n_name FROM nation, region \
         WHERE nation.n_regionkey = region.r_regionkey ORDER BY nation.n_name"

    python -m repro recommend --catalog star --budget-gb 5 --max-candidates 120
    python -m repro cache --catalog star --query-number 4 --builder pinum
    python -m repro cache-workload --catalog star --jobs 4 --cache-dir .inum-cache

The ``--cache-dir`` directory is a versioned
:class:`~repro.inum.serialization.CacheStore`::

    .inum-cache/
      <catalog fingerprint>/             one directory per catalog state
        <query fingerprint>.<builder>.json

Cache files are keyed by *fingerprints* of the catalog (schema, statistics,
permanent indexes) and of the query's canonical SQL, and each file records a
digest of the candidate-index set its access costs were collected for.
Changing the schema, refreshing statistics or changing the candidate set
makes the affected caches stale, so they are rebuilt instead of reused; a
second run of the *same* command against an unchanged catalog loads every
cache and spends zero optimizer calls.  ``recommend`` accepts the same
``--jobs``/``--cache-dir`` flags for its cache-backed cost models; to share
one store between ``cache-workload`` and ``recommend``, give both the same
``--max-candidates`` so they fingerprint the same candidate set.
"""

from __future__ import annotations

import argparse
import functools
import sys
from typing import List, Optional, Sequence

from repro.advisor import AdvisorOptions, CandidateGenerator, IndexAdvisor
from repro.bench.harness import ExperimentTable
from repro.inum import InumCacheBuilder
from repro.inum.serialization import CacheStore, save_cache
from repro.inum.workload_builder import WorkloadBuilderOptions, WorkloadCacheBuilder
from repro.optimizer import Optimizer
from repro.pinum import PinumCacheBuilder
from repro.query import Query, parse_query
from repro.util.errors import ReproError
from repro.util.units import format_bytes, gigabytes
from repro.workloads import StarSchemaWorkload, build_tpch_like_catalog, builtin_catalog_factory


def _load_catalog(name: str, seed: int) -> tuple:
    """Return ``(catalog, builtin workload queries)`` for a built-in catalog."""
    if name == "star":
        workload = StarSchemaWorkload(seed=seed)
        return workload.catalog(), workload.queries()
    if name == "tpch":
        from repro.workloads.tpch_like import tpch_q5_like_query, tpch_small_join_query

        return build_tpch_like_catalog(), [tpch_q5_like_query(), tpch_small_join_query()]
    raise ReproError(f"unknown catalog {name!r} (expected 'star' or 'tpch')")


def _read_queries(args: argparse.Namespace, builtin: Sequence[Query]) -> List[Query]:
    """Queries from --sql/--sql-file, falling back to the built-in workload."""
    if getattr(args, "sql", None):
        return [parse_query(args.sql, name="cli_query")]
    if getattr(args, "sql_file", None):
        with open(args.sql_file, "r", encoding="utf-8") as handle:
            text = handle.read()
        statements = [stmt.strip() for stmt in text.split(";") if stmt.strip()]
        return [parse_query(stmt, name=f"file_q{i + 1}") for i, stmt in enumerate(statements)]
    if getattr(args, "query_number", None):
        return [builtin[args.query_number - 1]]
    return list(builtin)


# -- subcommands ------------------------------------------------------------------


def _cmd_explain(args: argparse.Namespace) -> int:
    catalog, builtin = _load_catalog(args.catalog, args.seed)
    queries = _read_queries(args, builtin)
    optimizer = Optimizer(catalog)
    for query in queries:
        result = optimizer.optimize(query, enable_nestloop=not args.disable_nestloop)
        print(f"-- {query.name}")
        print(query.to_sql())
        print()
        print(result.plan.explain())
        print(f"estimated cost: {result.cost:,.2f}")
        print()
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    catalog, builtin = _load_catalog(args.catalog, args.seed)
    queries = _read_queries(args, builtin)
    optimizer = Optimizer(catalog)
    advisor = IndexAdvisor(
        catalog,
        optimizer,
        AdvisorOptions(
            space_budget_bytes=gigabytes(args.budget_gb),
            cost_model=args.cost_model,
            max_candidates=args.max_candidates,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            selector=args.selector,
            engine=args.engine,
        ),
        catalog_factory=functools.partial(builtin_catalog_factory, args.catalog, args.seed),
    )
    result = advisor.recommend(queries)
    print(f"workload          : {len(queries)} queries over catalog {args.catalog!r}")
    print(f"database size     : {format_bytes(catalog.database_size_bytes())}")
    print(f"cache preparation : {result.preparation_optimizer_calls} optimizer calls "
          f"({result.preparation_seconds:.2f}s, cost model {args.cost_model!r})")
    print(f"index selection   : {result.selection_candidate_evaluations} candidate / "
          f"{result.selection_query_evaluations} query evaluations "
          f"({result.selection_seconds:.2f}s, selector {result.selector!r}, "
          f"engine {result.engine!r})")
    print()
    print(result.summary())

    table = ExperimentTable(
        "Per-query estimated cost",
        ["query", "before", "after", "improvement"],
    )
    for query in queries:
        before = result.per_query_cost_before[query.name]
        after = result.per_query_cost_after[query.name]
        improvement = 0.0 if before == 0 else 100.0 * (1 - after / before)
        table.add_row(query.name, before, after, f"{improvement:.1f}%")
    table.print()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    catalog, builtin = _load_catalog(args.catalog, args.seed)
    queries = _read_queries(args, builtin)
    optimizer = Optimizer(catalog)
    generator = CandidateGenerator(catalog)
    table = ExperimentTable(
        f"Plan-cache construction ({args.builder})",
        ["query", "IOCs enumerated/kept", "optimizer calls", "cached plans",
         "access costs", "build (ms)"],
    )
    for query in queries:
        candidates = generator.for_query(query)
        if args.builder == "pinum":
            cache = PinumCacheBuilder(optimizer).build_cache(query, candidates)
        else:
            cache = InumCacheBuilder(optimizer).build_cache(query, candidates)
        stats = cache.build_stats
        table.add_row(
            query.name, stats.combinations_enumerated, stats.optimizer_calls_total,
            cache.entry_count, len(cache.access_costs), stats.seconds_total * 1000,
        )
        if args.save:
            path = f"{args.save}.{query.name}.json"
            save_cache(cache, path)
            print(f"saved cache for {query.name} to {path}")
    table.print()
    return 0


def _cmd_cache_workload(args: argparse.Namespace) -> int:
    catalog, builtin = _load_catalog(args.catalog, args.seed)
    queries = _read_queries(args, builtin)
    generator = CandidateGenerator(catalog)
    candidates = generator.for_workload(queries)
    if args.max_candidates is not None:
        candidates = candidates[: args.max_candidates]

    store = CacheStore(args.cache_dir, catalog) if args.cache_dir else None
    builder = WorkloadCacheBuilder(
        catalog,
        WorkloadBuilderOptions(
            builder=args.builder,
            jobs=args.jobs,
            use_call_cache=not args.no_call_cache,
        ),
        catalog_factory=functools.partial(builtin_catalog_factory, args.catalog, args.seed),
        store=store,
    )
    result = builder.build(queries, candidates)
    report = result.report

    table = ExperimentTable(
        f"Workload cache construction ({args.builder}, jobs={args.jobs})",
        ["query", "source", "optimizer calls", "what-if hits",
         "cached plans", "access costs", "build (ms)"],
    )
    for query in queries:
        outcome = report.outcome_for(query.name)
        cache = result.caches[query.name]
        source = outcome.source
        if outcome.deduped_from is not None:
            source = f"deduplicated ({outcome.deduped_from})"
        calls = outcome.stats.optimizer_calls_total if outcome.source == "built" else 0
        hits = outcome.stats.whatif_cache_hits if outcome.source == "built" else 0
        table.add_row(
            query.name, source, calls, hits,
            cache.entry_count, len(cache.access_costs),
            outcome.stats.seconds_total * 1000 if outcome.source == "built" else 0.0,
        )
    table.print()

    print(f"workload        : {report.queries_total} queries "
          f"({report.queries_built} built, {report.queries_from_store} from store, "
          f"{report.queries_deduplicated} deduplicated)")
    print(f"optimizer calls : {report.optimizer_calls}")
    print(f"what-if cache   : {report.whatif_cache_hits} hits "
          f"({report.whatif_hit_rate * 100.0:.1f}% of probes)")
    print(f"wall clock      : {report.wall_seconds:.2f}s "
          f"(per-query build time {report.build_seconds:.2f}s)")
    if store is not None:
        line = (f"cache store     : {store.catalog_dir} "
                f"({store.stored_count()} caches, {store.statistics.saves} saved this run")
        if store.statistics.stale_rejections:
            line += f", {store.statistics.stale_rejections} stale rejected"
        print(line + ")")
    return 0


# -- argument parsing ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PINUM reproduction: optimizer, plan caches and index advisor.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--catalog", choices=["star", "tpch"], default="star",
                         help="built-in catalog to run against")
        sub.add_argument("--seed", type=int, default=7, help="workload generator seed")
        sub.add_argument("--sql", help="a single SQL query text")
        sub.add_argument("--sql-file", help="file with ';'-separated SQL queries")
        sub.add_argument("--query-number", type=int,
                         help="pick one query of the built-in workload (1-based)")

    explain = subparsers.add_parser("explain", help="optimize a query and print its plan")
    add_common(explain)
    explain.add_argument("--disable-nestloop", action="store_true",
                         help="plan without nested-loop joins (enable_nestloop=off)")
    explain.set_defaults(handler=_cmd_explain)

    recommend = subparsers.add_parser("recommend", help="run the greedy index advisor")
    add_common(recommend)
    recommend.add_argument("--budget-gb", type=float, default=5.0,
                           help="index space budget in GiB (paper: 5)")
    recommend.add_argument("--cost-model", choices=["pinum", "inum", "optimizer"],
                           default="pinum", help="benefit oracle for the greedy search")
    recommend.add_argument("--max-candidates", type=int, default=120,
                           help="cap on the candidate-index set")
    recommend.add_argument("--jobs", type=int, default=1,
                           help="process-pool width for the per-query cache builds")
    recommend.add_argument("--cache-dir",
                           help="persistent cache-store directory reused across runs")
    recommend.add_argument("--selector", choices=["exhaustive", "lazy"], default="lazy",
                           help="greedy search variant: the paper's exhaustive loop or "
                                "the CELF-style lazy loop (identical picks, far fewer "
                                "evaluations)")
    recommend.add_argument("--engine", choices=["auto", "numpy", "python", "scalar"],
                           default="auto",
                           help="cache evaluation engine: compiled (numpy-vectorized "
                                "when available) or the original scalar walk")
    recommend.set_defaults(handler=_cmd_recommend)

    cache = subparsers.add_parser("cache", help="build a plan cache and report statistics")
    add_common(cache)
    cache.add_argument("--builder", choices=["pinum", "inum"], default="pinum",
                       help="which builder fills the cache")
    cache.add_argument("--save", help="path prefix for saving the cache(s) as JSON")
    cache.set_defaults(handler=_cmd_cache)

    workload = subparsers.add_parser(
        "cache-workload",
        help="build every workload query's plan cache (parallel, memoized, persistent)",
    )
    add_common(workload)
    workload.add_argument("--builder", choices=["pinum", "inum"], default="pinum",
                          help="which per-query builder fills the caches")
    workload.add_argument("--max-candidates", type=int,
                          help="cap on the candidate-index set (match recommend's "
                               "--max-candidates to share its cache store)")
    workload.add_argument("--jobs", type=int, default=1,
                          help="process-pool width (1 = serial with a shared what-if cache)")
    workload.add_argument("--cache-dir",
                          help="persistent cache-store directory reused across runs")
    workload.add_argument("--no-call-cache", action="store_true",
                          help="disable the memoizing what-if layer (baseline behaviour)")
    workload.set_defaults(handler=_cmd_cache_workload)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
