"""Setuptools shim.

The primary metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode on environments without the
``wheel`` package (offline CI containers), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
