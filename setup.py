"""Setuptools shim.

The primary metadata lives in ``pyproject.toml``; this file exists so legacy
tooling can still drive the build.  A plain ``pip install -e ".[dev]"`` is
the supported path (CI uses it); on offline machines add
``--no-build-isolation``, which additionally requires the ``setuptools`` and
``wheel`` packages to be present in the environment.
"""

from setuptools import setup

setup()
