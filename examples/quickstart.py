#!/usr/bin/env python3
"""Quickstart: optimize a query, ask what-if questions, build a PINUM cache.

Walks through the library's core objects on a TPC-H-like catalog:

1. build a catalog (tables + statistics, no data needed),
2. write a query with the builder or the SQL parser,
3. run the PostgreSQL-style optimizer and print the plan,
4. ask a what-if question (what if this index existed?),
5. build the plan cache with PINUM -- one/two optimizer calls -- and answer
   many configuration questions with pure arithmetic.

Run with:  python examples/quickstart.py
"""

from repro.catalog import Index
from repro.inum import AtomicConfiguration
from repro.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.pinum import PinumCacheBuilder, PinumCostModel
from repro.query import parse_query
from repro.workloads.tpch_like import build_tpch_like_catalog


def main() -> None:
    # 1. A catalog is schema + statistics; the optimizer never reads data.
    catalog = build_tpch_like_catalog(scale_factor=0.1)
    print(f"catalog: {catalog}")

    # 2. Queries can be written as SQL text (or with repro.query.QueryBuilder).
    query = parse_query(
        """
        SELECT customer.c_custkey, orders.o_totalprice
        FROM customer, orders, lineitem
        WHERE customer.c_custkey = orders.o_custkey
          AND orders.o_orderkey = lineitem.l_orderkey
          AND orders.o_orderdate BETWEEN 3000 AND 3090
        ORDER BY customer.c_custkey
        """,
        name="quickstart",
    )

    # 3. Optimize and inspect the plan.
    optimizer = Optimizer(catalog)
    result = optimizer.optimize(query)
    print("\n=== optimal plan without any indexes ===")
    print(result.plan.explain())
    print(f"estimated cost: {result.cost:,.1f}")

    # 4. What-if question: how much would a covering index on orders led by
    #    the filtered o_orderdate column help?
    whatif = WhatIfOptimizer(optimizer)
    candidate = Index("orders", ["o_orderdate", "o_custkey", "o_totalprice", "o_orderkey"])
    cost_with_index = whatif.cost_with_configuration(query, [candidate])
    print("\n=== what-if: covering index on orders(o_orderdate, ...) ===")
    print(f"cost without index : {result.cost:,.1f}")
    print(f"cost with index    : {cost_with_index:,.1f}")

    # 5. PINUM: fill the whole plan cache with two optimizer calls, then
    #    evaluate as many configurations as you like without the optimizer.
    candidates = [
        candidate,
        Index("orders", ["o_orderkey"]),
        Index("customer", ["c_custkey"]),
        Index("lineitem", ["l_orderkey", "l_extendedprice"]),
    ]
    optimizer.reset_counters()
    cache = PinumCacheBuilder(optimizer).build_cache(query, candidates)
    model = PinumCostModel(cache)
    print("\n=== PINUM cache ===")
    print(f"optimizer calls to build the cache : {cache.build_stats.optimizer_calls_total}")
    print(f"cached plans                       : {cache.entry_count}")

    configurations = [
        AtomicConfiguration([]),
        AtomicConfiguration([candidates[2]]),
        AtomicConfiguration([candidates[0], candidates[2]]),
        AtomicConfiguration([candidates[0], candidates[2], candidates[3]]),
    ]
    print("\nconfiguration costs estimated from the cache (no optimizer calls):")
    for configuration in configurations:
        estimate = model.estimate(configuration)
        print(f"  {configuration!r:70s} -> {estimate:,.1f}")
    print(f"\noptimizer calls spent answering them: {optimizer.call_count - cache.build_stats.optimizer_calls_total}")


if __name__ == "__main__":
    main()
