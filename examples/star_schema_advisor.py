#!/usr/bin/env python3
"""The paper's Section V-E/VI-E scenario: index selection for a star schema.

Builds the synthetic 10 GB star-schema workload (1 fact table, 28 dimension
tables, 10 analytical queries), generates a large candidate-index set from
the query text, and runs the greedy index advisor with the PINUM cache as its
benefit oracle and a 5 GB space budget (half the database size, as in the
paper).  Prints the selected indexes and the estimated per-query improvement.

Run with:  python examples/star_schema_advisor.py [--budget-gb 5] [--queries 10]
"""

import argparse

from repro.advisor import AdvisorOptions, CandidateGenerator, IndexAdvisor
from repro.bench.harness import ExperimentTable
from repro.optimizer import Optimizer
from repro.util.units import format_bytes, gigabytes
from repro.workloads import StarSchemaWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-gb", type=float, default=5.0, help="index space budget in GiB")
    parser.add_argument("--queries", type=int, default=10, help="number of workload queries to use")
    parser.add_argument("--max-candidates", type=int, default=120,
                        help="cap on the candidate set (keeps the demo fast)")
    args = parser.parse_args()

    workload = StarSchemaWorkload(seed=7)
    catalog = workload.catalog()
    queries = workload.queries()[: args.queries]
    print(f"database size : {format_bytes(catalog.database_size_bytes())}")
    print(f"workload      : {len(queries)} star-join queries")

    candidates = CandidateGenerator(catalog).for_workload(queries)
    print(f"candidates    : {len(candidates)} indexes derived from the query text")

    advisor = IndexAdvisor(
        catalog,
        Optimizer(catalog),
        AdvisorOptions(
            space_budget_bytes=gigabytes(args.budget_gb),
            cost_model="pinum",
            max_candidates=args.max_candidates,
        ),
    )
    result = advisor.recommend(queries)

    print(f"\ncache preparation: {result.preparation_optimizer_calls} optimizer calls, "
          f"{result.preparation_seconds:.2f}s")
    print("\n" + result.summary())

    table = ExperimentTable(
        "Per-query estimated cost before/after the recommendation",
        ["query", "cost before", "cost after", "improvement"],
    )
    for query in queries:
        before = result.per_query_cost_before[query.name]
        after = result.per_query_cost_after[query.name]
        improvement = 0.0 if before == 0 else 100.0 * (1 - after / before)
        table.add_row(query.name, before, after, f"{improvement:.1f}%")
    table.print()


if __name__ == "__main__":
    main()
