#!/usr/bin/env python3
"""Figure-7 style demo: run queries before and after building suggested indexes.

Materializes a scaled-down instance of the star-schema database, lets the
advisor (PINUM cost model) pick indexes under a space budget, then executes
each query through the row-at-a-time executor with and without the suggested
indexes, reporting the simulated execution times the reproduction uses in
place of wall-clock disk time.

Run with:  python examples/execute_with_suggested_indexes.py [--scale 0.0005]
"""

import argparse

from repro.advisor import AdvisorOptions, IndexAdvisor
from repro.bench.harness import ExperimentTable
from repro.executor import PlanExecutor
from repro.optimizer import Optimizer
from repro.util.units import format_bytes, megabytes
from repro.workloads import StarSchemaWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.0005,
                        help="fraction of the 10 GB statistical row counts to materialize")
    parser.add_argument("--queries", type=int, default=4, help="number of workload queries to run")
    parser.add_argument("--budget-mb", type=float, default=256.0, help="index budget in MiB")
    args = parser.parse_args()

    workload = StarSchemaWorkload(seed=7)
    catalog = workload.catalog()
    queries = workload.queries()[: args.queries]

    print(f"materializing data at scale {args.scale} ...")
    database = workload.database(scale=args.scale)
    database.analyze()  # make the optimizer plan against the materialized reality
    print(f"fact table rows: {database.relation('fact').row_count}")

    optimizer = Optimizer(catalog)
    advisor = IndexAdvisor(
        catalog,
        optimizer,
        AdvisorOptions(space_budget_bytes=megabytes(args.budget_mb), cost_model="pinum",
                       max_candidates=80),
    )
    recommendation = advisor.recommend(queries)
    print(f"\nsuggested {len(recommendation.selected_indexes)} indexes "
          f"({format_bytes(recommendation.total_index_bytes)}):")
    for index in recommendation.selected_indexes:
        print(f"  - {index.table}({', '.join(index.columns)})")

    def run_all() -> dict:
        times = {}
        for query in queries:
            plan = optimizer.optimize(query).plan
            times[query.name] = PlanExecutor(database, query).execute(plan).simulated_milliseconds
        return times

    before = run_all()
    for index in recommendation.selected_indexes:
        catalog.add_index(index.materialized())
    after = run_all()

    table = ExperimentTable(
        "Simulated execution time with and without the suggested indexes",
        ["query", "original (ms)", "with indexes (ms)", "speedup"],
    )
    for query in queries:
        speedup = before[query.name] / max(after[query.name], 1e-9)
        table.add_row(query.name, before[query.name], after[query.name], f"{speedup:.1f}x")
    table.print()
    total_before, total_after = sum(before.values()), sum(after.values())
    print(f"workload improvement: {100 * (1 - total_after / total_before):.1f}%")


if __name__ == "__main__":
    main()
