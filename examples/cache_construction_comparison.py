#!/usr/bin/env python3
"""INUM vs PINUM on one query: calls, time and cost-model accuracy.

This is the paper's core comparison in miniature.  For a star-schema query it
builds the plan cache the classic way (one optimizer call per interesting-
order combination plus one per candidate index) and the PINUM way (two calls
for the plans, one for every access cost), then checks both caches against
the optimizer on random atomic configurations.

Run with:  python examples/cache_construction_comparison.py [--query 4]
"""

import argparse

from repro.advisor import CandidateGenerator
from repro.bench.harness import ExperimentTable, Timer, relative_error
from repro.inum import AtomicConfiguration, InumCacheBuilder, InumCostModel
from repro.optimizer import Optimizer
from repro.optimizer.interesting_orders import combination_count
from repro.optimizer.whatif import WhatIfOptimizer
from repro.pinum import PinumCacheBuilder, PinumCostModel
from repro.util.rng import DeterministicRNG
from repro.workloads import StarSchemaWorkload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--query", type=int, default=4, help="workload query number (1-10)")
    parser.add_argument("--configurations", type=int, default=30,
                        help="random atomic configurations for the accuracy check")
    args = parser.parse_args()

    workload = StarSchemaWorkload(seed=7)
    catalog = workload.catalog()
    query = workload.queries()[args.query - 1]
    candidates = CandidateGenerator(catalog).for_query(query)
    optimizer = Optimizer(catalog)

    print(f"query {query.name}: {query.table_count} tables, "
          f"{combination_count(query)} interesting-order combinations, "
          f"{len(candidates)} candidate indexes\n")

    with Timer() as pinum_timer:
        pinum_cache = PinumCacheBuilder(optimizer).build_cache(query, candidates)
    with Timer() as inum_timer:
        inum_cache = InumCacheBuilder(optimizer).build_cache(query, candidates)

    table = ExperimentTable(
        "Cache construction",
        ["builder", "optimizer calls", "wall-clock (ms)", "cached plans", "unique plans"],
    )
    table.add_row("INUM", inum_cache.build_stats.optimizer_calls_total,
                  inum_timer.milliseconds, inum_cache.entry_count, inum_cache.unique_plan_count())
    table.add_row("PINUM", pinum_cache.build_stats.optimizer_calls_total,
                  pinum_timer.milliseconds, pinum_cache.entry_count, pinum_cache.unique_plan_count())
    table.print()
    print(f"speedup: {inum_timer.seconds / max(pinum_timer.seconds, 1e-9):.1f}x wall-clock, "
          f"{inum_cache.build_stats.optimizer_calls_total / pinum_cache.build_stats.optimizer_calls_total:.1f}x fewer calls\n")

    # Accuracy of both cost models against the optimizer.
    whatif = WhatIfOptimizer(optimizer)
    pinum_model = PinumCostModel(pinum_cache)
    inum_model = InumCostModel(inum_cache)
    rng = DeterministicRNG(23)
    per_table = {}
    for candidate in candidates:
        per_table.setdefault(candidate.table, []).append(candidate)

    errors = {"INUM": [], "PINUM": []}
    for _ in range(args.configurations):
        chosen = [rng.choice(indexes) for indexes in per_table.values() if rng.random() < 0.7]
        configuration = AtomicConfiguration(chosen)
        actual = whatif.cost_with_configuration(query, configuration.indexes)
        errors["INUM"].append(relative_error(inum_model.estimate(configuration), actual))
        errors["PINUM"].append(relative_error(pinum_model.estimate(configuration), actual))

    accuracy = ExperimentTable(
        f"Cost-model accuracy over {args.configurations} random atomic configurations",
        ["cost model", "average error", "maximum error"],
    )
    for name, values in errors.items():
        accuracy.add_row(name, f"{100 * sum(values) / len(values):.2f}%", f"{100 * max(values):.2f}%")
    accuracy.print()


if __name__ == "__main__":
    main()
