#!/usr/bin/env python3
"""The observability layer end to end: spans, metrics, export surfaces.

Everything the tuning stack does is visible through two process-wide
surfaces (:mod:`repro.obs`):

* a **span trace** per request -- opt-in (``RecommendRequest(trace=True)``),
  hierarchical, and decomposing the wall clock of a recommend into its
  build / evaluate / select phases,
* a **metrics registry** -- always on, fed by the same statistics the
  per-object dataclasses report, rendered as a Prometheus text exposition
  or a JSON snapshot with interpolated latency quantiles.

This demo:

1. runs a traced ``recommend`` and prints the span tree with per-phase
   durations (the CLI twin is ``repro recommend --trace-out FILE``),
2. runs a second, *untraced* recommend -- same code path, no spans, which
   is why tracing is free when off,
3. prints the metric families the two calls moved (the CLI twin is
   ``repro metrics``; a running ``repro serve --tcp`` server answers the
   same over the ``metrics`` op),
4. shows a histogram's interpolated p50/p90/p99 from the JSON snapshot.

Run with:  python examples/observability_demo.py
"""

from repro.advisor import AdvisorOptions
from repro.api.requests import RecommendRequest
from repro.api.session import TuningSession
from repro.obs import render_prometheus, snapshot
from repro.util.units import megabytes
from repro.workloads.tpch_like import (
    build_tpch_like_catalog,
    tpch_q5_like_query,
    tpch_small_join_query,
)


def print_span(span: dict, depth: int = 0) -> None:
    attributes = ", ".join(
        f"{key}={value}" for key, value in sorted(span["attributes"].items())
    )
    print(f"  {'  ' * depth}{span['name']:<32} {span['duration_ms']:9.2f} ms"
          f"  {attributes}")
    for child in span["children"]:
        print_span(child, depth + 1)


def main() -> None:
    session = TuningSession(
        build_tpch_like_catalog(),
        [tpch_q5_like_query(), tpch_small_join_query()],
        options=AdvisorOptions(
            space_budget_bytes=megabytes(512), max_candidates=40
        ),
    )

    # 1. A traced recommend: the response carries the whole span tree.
    print("=== traced recommend: where did the time go? ===")
    response = session.recommend(RecommendRequest(trace=True))
    trace = response.trace
    assert trace is not None
    print_span(trace)
    accounted = sum(child["duration_ms"] for child in trace["children"])
    print(f"  phase coverage: {accounted / trace['duration_ms'] * 100.0:.1f}% "
          "of the root span is accounted for by its children")

    # 2. The same call untraced: identical result, zero tracing work.
    untraced = session.recommend()
    assert untraced.trace is None
    print("\n=== untraced recommend ===")
    print("  response.trace is None -- spans cost nothing when off")

    # 3. The registry saw both calls (and everything beneath them).
    print("\n=== repro metrics (excerpt) ===")
    interesting = (
        "repro_session_recommends_total",
        "repro_session_caches_total",
        "repro_whatif_calls_total",
        "repro_selection_evaluations_total",
    )
    for line in render_prometheus().splitlines():
        if line.startswith(interesting):
            print(f"  {line}")

    # 4. Latency distributions carry interpolated quantiles in the JSON
    #    snapshot (fixed buckets, so memory stays bounded forever).
    families = {family["name"]: family for family in snapshot()["families"]}
    recommend_seconds = families["repro_recommend_seconds"]["series"]
    print("\n=== recommend latency quantiles ===")
    for series in recommend_seconds:
        labels = ",".join(f"{k}={v}" for k, v in series["labels"].items())
        print(f"  {labels or '(no labels)'}: count={series['count']} "
              f"p50={series['p50'] * 1000.0:.1f}ms "
              f"p90={series['p90'] * 1000.0:.1f}ms "
              f"p99={series['p99'] * 1000.0:.1f}ms")

    print("\ndone: every number above is also one `repro metrics` "
          "or `--trace-out` invocation away on the CLI.")


if __name__ == "__main__":
    main()
