#!/usr/bin/env python3
"""Optimal index selection: the ILP solver vs the greedy heuristic.

Greedy index selection is fast and usually good -- but it commits to one
pick at a time, and under a tight space budget an early large index can
crowd out a better combination.  The ``"ilp"`` selector compiles the same
plan-cache arithmetic into a CoPhy-style binary integer program and solves
it with branch and bound, warm-started from the lazy-greedy picks, so it is
*never worse* and reports a proven optimality gap:

1. tune the fig-7 star workload with the lazy-greedy selector,
2. tune it again with ``selector="ilp"`` -- same session, warm caches; the
   solver proves optimality (gap 0) and here finds a strictly better
   configuration than greedy under the same 5 GB budget, and
3. interrupt the solver (``ilp_time_limit=0``) to show the anytime
   contract: greedy-quality picks plus an honest proven gap.

Run with:  python examples/ilp_demo.py
"""

from repro.advisor import AdvisorOptions
from repro.api.requests import RecommendRequest
from repro.api.session import TuningSession
from repro.util.units import format_bytes, gigabytes
from repro.workloads import StarSchemaWorkload


def show(title: str, result) -> None:
    print(f"\n=== {title} ===")
    print(f"cost    : {result.workload_cost_before:,.1f} -> "
          f"{result.workload_cost_after:,.1f} "
          f"({result.improvement_fraction * 100.0:.1f}% improvement)")
    print(f"gap     : {result.optimality_gap_text()}")
    if result.selector == "ilp":
        print(f"solver  : {result.nodes_explored} nodes, "
              f"incumbent from {result.incumbent_source}")
    print(f"indexes : {len(result.selected_indexes)} "
          f"({format_bytes(result.total_index_bytes)})")
    for index in result.selected_indexes:
        print(f"  - {index.table}({', '.join(index.columns)})")


def main() -> None:
    workload = StarSchemaWorkload(seed=7)
    session = TuningSession(
        workload.catalog(),
        workload.queries(),
        options=AdvisorOptions(
            space_budget_bytes=gigabytes(5),
            max_candidates=60,
        ),
    )

    # 1. The heuristic: CELF-style lazy greedy (the session default).
    greedy = session.recommend().result
    show("lazy greedy (heuristic, no bound)", greedy)

    # 2. The solver: same warm caches, provably optimal answer.  On this
    #    workload the greedy pick sequence is sub-optimal -- branch and
    #    bound finds a cheaper configuration under the same budget and
    #    proves no better one exists.
    optimal = session.recommend(RecommendRequest(selector="ilp")).result
    show("ilp (proved optimal)", optimal)

    saved = greedy.workload_cost_after - optimal.workload_cost_after
    print(f"\nILP beats greedy by {saved:,.1f} cost units "
          f"({100.0 * saved / greedy.workload_cost_after:.2f}% of the tuned cost), "
          "with proof.")

    # 3. Anytime: a zero time limit returns the warm-started greedy picks
    #    and the gap the root relaxation could already prove.
    interrupted = session.recommend(
        RecommendRequest(selector="ilp", ilp_time_limit=0.0)
    ).result
    show("ilp interrupted at t=0 (anytime contract)", interrupted)


if __name__ == "__main__":
    main()
