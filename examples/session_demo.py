#!/usr/bin/env python3
"""TuningSession end-to-end: create -> recommend -> add a query -> re-tune.

The one-shot ``IndexAdvisor`` rebuilds its world per call; a
:class:`~repro.api.session.TuningSession` keeps the expensive state -- plan
caches, the memoizing what-if layer, compiled evaluation engines -- warm for
its whole lifetime, so repeated and *incremental* tuning requests only pay
for what actually changed:

1. create a session over the TPC-H-like catalog with the ``"per_query"``
   candidate policy (each query's cache depends on that query alone),
2. ``recommend()`` -- the cold call builds every per-query cache,
3. ``recommend()`` again -- zero cache builds, selection re-runs warm,
4. ``add_queries()`` one new query and re-tune -- exactly one new cache is
   built, everything else is reused,
5. shrink the budget with ``set_budget()`` -- still zero builds,
6. price an index set (``evaluate``) and double-check it against the real
   optimizer (``what_if``), and
7. replay the same flow over TCP: boot the concurrent
   :class:`~repro.api.server.TuningServer` in-process and drive two named
   sessions through sockets -- the second tenant's ``recommend`` performs
   zero cache builds because both sessions hang under one shared read-only
   cache tier.

Run with:  python examples/session_demo.py
"""

import asyncio

from repro.advisor import AdvisorOptions
from repro.api.requests import EvaluateRequest, WhatIfRequest
from repro.api.session import TuningSession
from repro.query import parse_query
from repro.util.units import format_bytes, gigabytes, megabytes
from repro.workloads.tpch_like import (
    build_tpch_like_catalog,
    tpch_q5_like_query,
    tpch_small_join_query,
)


def show(title: str, response) -> None:
    result = response.result
    print(f"\n=== {title} ===")
    print(f"caches: {response.caches_built} built, {response.caches_from_store} from store, "
          f"{response.caches_reused} reused in session")
    print(f"cost  : {result.workload_cost_before:,.1f} -> {result.workload_cost_after:,.1f} "
          f"({result.improvement_fraction * 100.0:.1f}% improvement)")
    for index in result.selected_indexes:
        print(f"  - {index.table}({', '.join(index.columns)})  "
              f"[{format_bytes(result.total_index_bytes)} total]")


def main() -> None:
    # 1. One session, configured once.  The per_query candidate policy makes
    #    workload mutations incremental: a query's cache never depends on its
    #    neighbours.
    session = TuningSession(
        build_tpch_like_catalog(),
        [tpch_q5_like_query(), tpch_small_join_query()],
        options=AdvisorOptions(
            space_budget_bytes=gigabytes(1),
            candidate_policy="per_query",
        ),
    )

    # 2. Cold: every per-query plan cache is built (the one-time cost).
    show("cold recommend (builds all caches)", session.recommend())

    # 3. Warm: same request, zero optimizer work -- selection only.
    show("warm recommend (no builds)", session.recommend())

    # 4. Incremental re-tune: one new query -> exactly one new cache.
    session.add_queries([parse_query(
        """
        SELECT orders.o_totalprice
        FROM orders
        WHERE orders.o_totalprice < 500
        ORDER BY orders.o_totalprice
        """,
        name="cheap_orders",
    )])
    show("re-tune after add_queries (one new cache)", session.recommend())

    # 5. Budget changes never rebuild caches -- selection just re-runs.
    session.set_budget(megabytes(256))
    show("re-tune after set_budget(256 MiB) (no builds)", session.recommend())

    # 6. Price an index set from the warm caches, then ask the real
    #    optimizer the same question (memoized in the session's call cache).
    chosen = session.recommend().result.selected_indexes
    cached = session.evaluate(EvaluateRequest(indexes=chosen))
    exact = session.what_if(WhatIfRequest(indexes=chosen))
    print("\n=== evaluate (cache arithmetic) vs what_if (optimizer) ===")
    print(f"cache estimate : {cached.total_cost:,.1f}")
    print(f"optimizer says : {exact.total_cost:,.1f} ({exact.optimizer_calls} calls)")

    stats = session.statistics
    print(f"\nsession totals : {stats.recommend_calls} recommends, "
          f"{stats.caches_built} caches built, {stats.caches_reused} reused")

    # 7. The same service over TCP: N concurrent tenants, one shared tier.
    asyncio.run(tcp_demo())


async def tcp_demo() -> None:
    from repro.api.server import TuningClient, TuningServer

    server = TuningServer(default_catalog="tpch")
    await server.start()  # port 0 -> an ephemeral port
    print(f"\n=== TCP serve on 127.0.0.1:{server.port} (shared tier) ===")
    try:
        async with TuningClient("127.0.0.1", server.port,
                                session_id="tenant-a") as client:
            response = await client.call("recommend")
            counters = response["result"]["session"]
            print(f"tenant-a recommend: {counters['caches_built']} built, "
                  f"{counters['caches_shared']} from shared tier")

        # A different session over the same catalog: every cache is adopted
        # from the shared tier -- zero builds, selection only.
        async with TuningClient("127.0.0.1", server.port,
                                session_id="tenant-b") as client:
            response = await client.call("recommend")
            counters = response["result"]["session"]
            print(f"tenant-b recommend: {counters['caches_built']} built, "
                  f"{counters['caches_shared']} from shared tier")
            assert counters["caches_built"] == 0

            stats = (await client.call("server_stats"))["result"]
            tier = stats["tier"]
            print(f"server: {stats['sessions']} sessions, tier holds "
                  f"{tier['caches_published']} caches / "
                  f"{tier['engines_published']} engines "
                  f"({tier['cache_hits']} shared hits)")
    finally:
        await server.stop()


if __name__ == "__main__":
    main()
