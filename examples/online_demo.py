#!/usr/bin/env python3
"""Online self-tuning end-to-end: stream -> drift -> one warm re-tune.

The batch advisor answers "what indexes fit this workload?"; the online
subsystem (:mod:`repro.online`) answers the operational question "the
workload just changed -- now what?" without a human in the loop:

1. emit a deterministic two-phase NDJSON trace from the star-schema
   workload generator -- analytics traffic first, then update-heavy
   traffic (``StarSchemaWorkload.trace``),
2. attach an :class:`~repro.online.OnlineTuner` to a fresh
   :class:`~repro.api.session.TuningSession` over a
   :class:`~repro.online.MemoryStatementSource` and feed the trace in
   chunks, as a live feed would deliver it,
3. the sliding window folds executions into SQL-fingerprint templates;
   when it first fills, the daemon *bootstraps* (the initial tune),
4. at the phase boundary the template distribution drifts past the
   high-water mark: the hysteresis detector fires exactly once, the
   daemon re-tunes warm (plan caches are built only for the never-seen
   write templates), and transition costing decides whether the new
   configuration's projected savings pay for its index builds,
5. the trailing stationary traffic causes no further re-tunes -- drift
   collapses once the window turns over and the detector re-arms.

The same loop ships as ``repro watch --follow trace.ndjson`` (file
tailing) and as the ``watch_start``/``watch_stats``/``watch_stop`` serve
operations.

Run with:  python examples/online_demo.py
"""

from repro.advisor import AdvisorOptions
from repro.api.session import TuningSession
from repro.online import MemoryStatementSource, OnlineTuner, OnlineTunerConfig
from repro.workloads import StarSchemaWorkload


def describe(decision) -> None:
    print(f"\n=== {decision.kind} tune ({decision.verdict}) ===")
    print(f"drift          : {decision.drift:.3f}")
    print(f"window         : {decision.window_statements} statements, "
          f"{decision.window_templates} templates")
    print(f"cache builds   : {decision.caches_built} "
          f"(never-seen templates: {decision.new_templates})")
    if decision.kind != "bootstrap":
        print(f"transition     : projected saving {decision.projected_saving:,.0f} "
              f"vs build cost {decision.build_cost:,.0f}")
    for label in decision.added_indexes:
        print(f"  + {label}")
    for label in decision.dropped_indexes:
        print(f"  - {label}")
    print(f"re-tune seconds: {decision.seconds:.3f}")


def main() -> None:
    workload = StarSchemaWorkload(seed=7)
    # 480 statements: 240 of analytics traffic, then 240 update-heavy.
    lines = workload.trace(480, seed=11, phases=("read", "mixed"))
    print(f"trace: {len(lines)} NDJSON statements, phases read -> mixed")
    print(f"first line: {lines[0][:76]}...")

    # The daemon owns the workload, so the session starts empty; per_query
    # keeps each re-tune's cache builds to exactly the never-seen delta.
    session = TuningSession(
        workload.catalog(),
        [],
        options=AdvisorOptions(candidate_policy="per_query", max_candidates=40),
    )
    tuner = OnlineTuner(
        session,
        MemoryStatementSource(),
        OnlineTunerConfig(
            window_statements=120, drift_high_water=0.3, drift_low_water=0.1
        ),
    )

    # Feed the trace the way a live feed would arrive: 40 statements per poll.
    for start in range(0, len(lines), 40):
        tuner.source.feed(lines[start:start + 40])
        for decision in tuner.poll():
            describe(decision)

    stats = tuner.statistics
    print("\n=== daemon statistics ===")
    print(f"statements ingested : {stats.statements_ingested} "
          f"({stats.malformed_lines} malformed)")
    print(f"drift now           : {stats.drift:.3f} "
          f"(armed={stats.armed}, fires={stats.fires}, rearms={stats.rearms})")
    print(f"re-tunes            : {stats.retunes_triggered} triggered, "
          f"{stats.retunes_accepted} accepted, {stats.retunes_rejected} rejected")
    print(f"session cache builds: {session.statistics.caches_built} "
          f"(recommends: {session.statistics.recommend_calls})")

    assert stats.fires == 1, "expected exactly one re-tune at the phase boundary"
    assert stats.retunes_triggered == 1


if __name__ == "__main__":
    main()
