"""Tests for the online statement sources (repro.online.stream)."""

from __future__ import annotations

import json

from repro.online import FileTailSource, MemoryStatementSource
from repro.query.ast import DmlStatement, Query
from repro.query.parser import parse_statement

SELECT = "SELECT customers.c_age FROM customers WHERE customers.c_age > 30"
INSERT = "INSERT INTO customers (c_age, c_region) VALUES (30, 1)"
SELECT_SQL = parse_statement(SELECT).to_sql()  # the parse -> to_sql normal form


class TestMemorySource:
    def test_feeds_bare_sql_and_json_lines(self):
        source = MemoryStatementSource()
        queued = source.feed([
            SELECT,
            json.dumps({"template": "ins", "sql": INSERT, "phase": "write"}),
        ])
        assert queued == 2
        statements = source.poll()
        assert isinstance(statements[0], Query)
        assert isinstance(statements[1], DmlStatement)
        assert statements[1].name == "ins"
        assert source.poll() == []  # drained

    def test_feed_accepts_a_newline_joined_string(self):
        source = MemoryStatementSource()
        assert source.feed(f"{SELECT}\n\n{INSERT}\n") == 2
        assert len(source.poll()) == 2

    def test_malformed_lines_are_counted_not_raised(self):
        source = MemoryStatementSource()
        queued = source.feed([
            "THIS IS NOT SQL AT ALL !!!",
            '{"sql": 42}',          # sql is not a string
            '{"no_sql_key": true}',
            "{broken json",
            SELECT,
        ])
        assert queued == 1
        assert source.statistics.malformed_lines == 4
        assert source.statistics.statements_parsed == 1
        assert source.statistics.lines_seen == 5

    def test_feed_accepts_parsed_statements(self):
        source = MemoryStatementSource()
        probe = MemoryStatementSource()
        probe.feed([SELECT])
        statement = probe.poll()[0]
        assert source.feed([statement]) == 1
        assert source.poll() == [statement]


class TestFileTailSource:
    def test_missing_file_yields_nothing(self, tmp_path):
        source = FileTailSource(str(tmp_path / "absent.ndjson"))
        assert source.poll() == []

    def test_tails_appended_lines_only_once(self, tmp_path):
        path = tmp_path / "feed.ndjson"
        path.write_text(SELECT + "\n")
        source = FileTailSource(str(path))
        assert [s.to_sql() for s in source.poll()] == [SELECT_SQL]
        assert source.poll() == []
        with path.open("a") as handle:
            handle.write(INSERT + "\n")
        appended = source.poll()
        assert len(appended) == 1
        assert isinstance(appended[0], DmlStatement)

    def test_start_at_end_skips_existing_content(self, tmp_path):
        path = tmp_path / "feed.ndjson"
        path.write_text(SELECT + "\n" + SELECT + "\n")
        source = FileTailSource(str(path), start_at_end=True)
        assert source.poll() == []
        with path.open("a") as handle:
            handle.write(INSERT + "\n")
        assert len(source.poll()) == 1

    def test_partial_line_buffers_until_newline(self, tmp_path):
        path = tmp_path / "feed.ndjson"
        source = FileTailSource(str(path))
        path.write_text(SELECT[:20])  # a writer mid-append
        assert source.poll() == []
        with path.open("a") as handle:
            handle.write(SELECT[20:] + "\n")
        assert [s.to_sql() for s in source.poll()] == [SELECT_SQL]

    def test_truncation_resets_the_offset(self, tmp_path):
        path = tmp_path / "feed.ndjson"
        path.write_text(SELECT + "\n" + SELECT + "\n")
        source = FileTailSource(str(path))
        assert len(source.poll()) == 2
        path.write_text(INSERT + "\n")  # rotation: file shrank
        statements = source.poll()
        assert len(statements) == 1
        assert isinstance(statements[0], DmlStatement)
