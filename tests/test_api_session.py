"""Tests for the TuningSession service API: reuse, delta re-tuning, requests."""

import pytest

from repro.advisor import AdvisorOptions, IndexAdvisor
from repro.api.registry import SELECTORS
from repro.api.requests import (
    EvaluateRequest,
    ExplainRequest,
    RecommendRequest,
    WhatIfRequest,
)
from repro.api.session import TuningSession
from repro.catalog import Index
from repro.optimizer import Optimizer
from repro.query import QueryBuilder
from repro.util.errors import AdvisorError
from repro.util.units import megabytes

from tests.conftest import build_join_query, build_simple_query, build_small_catalog


def build_third_query(name: str = "customer_ages"):
    """A single-table query on a different table than build_simple_query."""
    return (
        QueryBuilder(name)
        .select("customers.c_age", "customers.c_region")
        .from_tables("customers")
        .where("customers.c_age", "<=", 40)
        .order_by("customers.c_age")
        .build()
    )


@pytest.fixture
def options():
    return AdvisorOptions(
        space_budget_bytes=megabytes(512), candidate_policy="per_query"
    )


@pytest.fixture
def session(options):
    return TuningSession(
        build_small_catalog(), [build_join_query(), build_simple_query()], options=options
    )


class TestRecommend:
    def test_matches_one_shot_advisor(self, options):
        catalog = build_small_catalog()
        workload = [build_join_query(), build_simple_query()]
        one_shot = IndexAdvisor(
            catalog,
            Optimizer(catalog),
            AdvisorOptions(space_budget_bytes=megabytes(512)),
        ).recommend(workload)
        session = TuningSession(
            build_small_catalog(),
            workload,
            options=AdvisorOptions(space_budget_bytes=megabytes(512)),
        )
        response = session.recommend()
        assert [i.key for i in response.result.selected_indexes] == [
            i.key for i in one_shot.selected_indexes
        ]
        assert response.result.workload_cost_after == one_shot.workload_cost_after

    def test_empty_workload_rejected(self):
        session = TuningSession(build_small_catalog())
        with pytest.raises(AdvisorError, match="at least one query"):
            session.recommend()

    def test_request_overrides_are_validated(self, session):
        with pytest.raises(AdvisorError, match="unknown selector"):
            session.recommend(RecommendRequest(selector="bogus"))

    def test_request_overrides_apply(self, session):
        response = session.recommend(RecommendRequest(selector="exhaustive"))
        assert response.result.selector == "exhaustive"

    def test_explicit_candidates_bypass_generation(self, session):
        candidate = Index("sales", ["s_customer"], hypothetical=True)
        response = session.recommend(RecommendRequest(candidates=[candidate]))
        assert response.candidate_policy == "explicit"
        assert response.result.candidate_count == 1


class TestSessionReuse:
    def test_second_recommend_builds_nothing(self, session):
        first = session.recommend()
        assert first.caches_built == 2
        assert first.caches_reused == 0

        calls_before = session.optimizer.call_count
        second = session.recommend()
        assert second.caches_built == 0
        assert second.caches_from_store == 0
        assert second.caches_reused == 2
        # Zero duplicate per-query cache builds: not one optimizer call.
        assert session.optimizer.call_count == calls_before
        assert second.result.preparation_optimizer_calls == 0
        assert [i.key for i in second.result.selected_indexes] == [
            i.key for i in first.result.selected_indexes
        ]

    def test_added_query_rebuilds_only_the_delta(self, session):
        session.recommend()
        session.add_queries([build_third_query()])
        response = session.recommend()
        assert response.caches_built == 1
        assert response.caches_reused == 2

    def test_removed_query_rebuilds_nothing(self, session):
        session.recommend()
        session.remove_queries(["simple_scan"])
        response = session.recommend()
        assert response.caches_built == 0
        assert response.caches_reused == 1
        assert set(response.result.per_query_cost_after) == {"sales_by_region"}

    def test_readding_a_removed_query_is_free(self, session):
        session.recommend()
        session.remove_queries(["simple_scan"])
        session.recommend()
        session.add_queries([build_simple_query()])
        response = session.recommend()
        assert response.caches_built == 0
        assert response.caches_reused == 2

    def test_budget_change_reruns_selection_without_builds(self, session):
        first = session.recommend()
        session.set_budget(megabytes(8))
        second = session.recommend()
        assert second.caches_built == 0
        assert second.result.total_index_bytes <= megabytes(8)
        assert len(second.result.selected_indexes) <= len(first.result.selected_indexes)

    def test_statistics_accumulate(self, session):
        session.recommend()
        session.recommend()
        stats = session.statistics
        assert stats.recommend_calls == 2
        assert stats.caches_built == 2
        assert stats.caches_reused == 2

    def test_persistent_store_warms_new_sessions(self, options, tmp_path):
        import dataclasses

        store_options = dataclasses.replace(options, cache_dir=str(tmp_path / "store"))
        workload = [build_join_query(), build_simple_query()]
        first = TuningSession(build_small_catalog(), workload, options=store_options)
        cold = first.recommend()
        assert cold.caches_built == 2

        second = TuningSession(build_small_catalog(), workload, options=store_options)
        warm = second.recommend()
        assert warm.caches_built == 0
        assert warm.caches_from_store == 2
        assert [i.key for i in warm.result.selected_indexes] == [
            i.key for i in cold.result.selected_indexes
        ]


class TestWorkloadMutation:
    def test_duplicate_name_rejected(self, session):
        with pytest.raises(AdvisorError, match="already in the session workload"):
            session.add_queries([build_join_query()])

    def test_add_queries_is_atomic(self, session):
        """A duplicate anywhere in the batch applies nothing."""
        with pytest.raises(AdvisorError):
            session.add_queries([build_third_query(), build_join_query()])
        assert session.query_names == ["sales_by_region", "simple_scan"]
        # Retrying the fixed batch works (nothing was half-applied).
        session.add_queries([build_third_query()])
        assert "customer_ages" in session.query_names

    def test_remove_queries_is_atomic(self, session):
        with pytest.raises(AdvisorError):
            session.remove_queries(["simple_scan", "nope"])
        assert session.query_names == ["sales_by_region", "simple_scan"]

    def test_removing_unknown_name_rejected(self, session):
        with pytest.raises(AdvisorError, match="no query named 'nope'"):
            session.remove_queries(["nope"])

    def test_invalid_budget_rejected(self, session):
        with pytest.raises(AdvisorError, match=r"space_budget_bytes must be > 0, got 0"):
            session.set_budget(0)

    def test_query_names_track_mutations(self, session):
        assert session.query_names == ["sales_by_region", "simple_scan"]
        session.remove_queries(["sales_by_region"])
        assert session.query_names == ["simple_scan"]


class TestOtherRequests:
    def test_evaluate_matches_recommend_costs(self, session):
        response = session.recommend()
        evaluated = session.evaluate(
            EvaluateRequest(indexes=response.result.selected_indexes)
        )
        assert evaluated.total_cost == pytest.approx(response.result.workload_cost_after)
        assert evaluated.total_index_bytes == response.result.total_index_bytes

    def test_evaluate_reuses_model_without_builds(self, session):
        session.recommend()
        built_before = session.statistics.caches_built
        session.evaluate(EvaluateRequest(indexes=[]))
        assert session.statistics.caches_built == built_before

    def test_evaluate_ignores_stale_model_from_explicit_candidates(self, session):
        """A recommend with narrow explicit candidates must not poison
        evaluate(): the session rebuilds its configured model instead of
        answering from caches that never saw the evaluated index."""
        baseline = session.recommend()
        good = baseline.result.selected_indexes
        expected = session.evaluate(EvaluateRequest(indexes=good)).total_cost

        narrow = Index("products", ["p_price"], hypothetical=True)
        session.recommend(RecommendRequest(candidates=[narrow]))
        assert session.evaluate(EvaluateRequest(indexes=good)).total_cost == pytest.approx(
            expected
        )

    def test_what_if_answers_exactly_and_memoizes(self, session):
        candidate = Index("sales", ["s_customer"], hypothetical=True)
        first = session.what_if(WhatIfRequest(indexes=[candidate]))
        assert first.optimizer_calls > 0
        second = session.what_if(WhatIfRequest(indexes=[candidate]))
        assert second.optimizer_calls == 0
        assert second.total_cost == first.total_cost

    def test_explain_by_name_and_sql(self, session):
        by_name = session.explain(ExplainRequest(query="simple_scan"))
        assert by_name.cost > 0
        assert "Scan" in by_name.plan
        by_sql = session.explain(
            ExplainRequest(sql="SELECT sales.s_amount FROM sales ORDER BY sales.s_amount")
        )
        assert by_sql.query_name == "adhoc"

    def test_explain_needs_exactly_one_source(self, session):
        with pytest.raises(AdvisorError, match="exactly one"):
            session.explain(ExplainRequest())
        with pytest.raises(AdvisorError, match="exactly one"):
            session.explain(ExplainRequest(query="simple_scan", sql="SELECT 1"))
        with pytest.raises(AdvisorError, match="no query named"):
            session.explain(ExplainRequest(query="missing"))


class TestPoolBounds:
    def test_cache_pool_is_bounded(self, options):
        session = TuningSession(
            build_small_catalog(),
            [build_simple_query()],
            options=options,
            max_pooled_caches=2,
        )
        # Three distinct candidate sets -> three distinct cache keys.
        for columns in (["s_customer"], ["s_product"], ["s_amount"]):
            session.build_query_cache(
                build_simple_query(),
                candidates=[Index("sales", columns, hypothetical=True)],
            )
        assert session.cached_query_count() <= 2

    def test_active_caches_survive_pruning(self, options):
        session = TuningSession(
            build_small_catalog(),
            [build_join_query(), build_simple_query()],
            options=options,
            max_pooled_caches=1,
        )
        response = session.recommend()
        # The cap is below the workload size, but the active request's
        # caches are never evicted mid-flight; the next recommend may
        # rebuild, never crash.
        assert response.result.selected_indexes
        session.recommend()


class TestOptimizerCostModelSession:
    def test_optimizer_model_memoizes_across_recommends(self):
        options = AdvisorOptions(
            space_budget_bytes=megabytes(512),
            cost_model="optimizer",
            max_candidates=4,
        )
        session = TuningSession(build_small_catalog(), [build_simple_query()], options=options)
        first = session.recommend()
        calls_after_first = session.optimizer.call_count
        second = session.recommend()
        # The what-if memo is session-lifetime: a repeated tuning request
        # answers every probe from memory.
        assert session.optimizer.call_count == calls_after_first
        assert [i.key for i in second.result.selected_indexes] == [
            i.key for i in first.result.selected_indexes
        ]
        assert first.result.engine == "optimizer"


class TestPluggableSelector:
    def test_custom_selector_runs_through_session(self, session):
        class FirstFitSelector:
            """Picks the first candidate that fits the budget, once."""

            def __init__(self, catalog, cost_model, budget, min_benefit):
                self._catalog = catalog
                self._cost_model = cost_model
                self._budget = budget
                from repro.advisor.greedy import SelectionStatistics

                self.statistics = SelectionStatistics()

            def select(self, candidates):
                from repro.advisor.greedy import SelectionStep

                before = self._cost_model.workload_cost([])
                for candidate in candidates:
                    if self._catalog.index_size_bytes(candidate) <= self._budget:
                        after = self._cost_model.workload_cost([candidate])
                        return [SelectionStep(candidate, before, after,
                                              self._catalog.index_size_bytes(candidate))]
                return []

        SELECTORS.register("first-fit", FirstFitSelector)
        try:
            response = session.recommend(RecommendRequest(selector="first-fit"))
            assert len(response.result.selected_indexes) <= 1
            assert response.result.selector == "first-fit"
        finally:
            SELECTORS.unregister("first-fit")


class TestConfigureAndRetuneAccounting:
    def test_configure_replaces_options_with_validation(self, session):
        assert session.options.candidate_policy == "per_query"
        updated = session.configure(candidate_policy="workload")
        assert updated.candidate_policy == "workload"
        assert session.options.candidate_policy == "workload"

    def test_configure_rejects_invalid_overrides(self, session):
        with pytest.raises(AdvisorError):
            session.configure(space_budget_bytes=-1)
        with pytest.raises(TypeError):
            session.configure(not_a_real_option=True)

    def test_note_retune_updates_counters_and_timestamp(self, session):
        statistics = session.statistics
        assert statistics.retunes_accepted == 0
        assert statistics.retunes_rejected == 0
        assert session.last_retune_at is None
        session.note_retune(True)
        session.note_retune(False)
        assert session.statistics.retunes_accepted == 1
        assert session.statistics.retunes_rejected == 1
        assert session.last_retune_at is not None

    def test_recommend_stamps_last_recommend_at(self, session):
        assert session.last_recommend_at is None
        session.recommend(RecommendRequest())
        first = session.last_recommend_at
        assert first is not None
        assert first >= session.created_at
        session.recommend(RecommendRequest())
        assert session.last_recommend_at >= first
