"""Tests for the index advisor front end."""

import pytest

from repro.advisor import AdvisorOptions, IndexAdvisor
from repro.optimizer import Optimizer
from repro.util.errors import AdvisorError
from repro.util.units import megabytes


@pytest.fixture
def workload(join_query, simple_query):
    return [join_query, simple_query]


class TestRecommend:
    def test_recommendation_improves_workload(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(512), cost_model="pinum"),
        )
        result = advisor.recommend(workload)
        assert result.workload_cost_after <= result.workload_cost_before
        assert result.improvement_fraction >= 0.0
        assert result.candidate_count > 0
        assert result.total_index_bytes <= megabytes(512)
        assert set(result.per_query_cost_before) == {q.name for q in workload}

    def test_selected_indexes_match_steps(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(512)),
        )
        result = advisor.recommend(workload)
        assert [step.chosen for step in result.steps] == result.selected_indexes

    def test_summary_is_readable(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(256)),
        )
        summary = advisor.recommend(workload).summary()
        assert "candidates considered" in summary
        assert "workload cost" in summary

    def test_max_candidates_truncates(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(256), max_candidates=5),
        )
        result = advisor.recommend(workload)
        assert result.candidate_count == 5

    def test_explicit_candidates_used(self, small_catalog, workload, sample_index):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(256)),
        )
        result = advisor.recommend(workload, candidates=[sample_index])
        assert result.candidate_count == 1

    def test_empty_workload_rejected(self, small_catalog):
        advisor = IndexAdvisor(small_catalog, Optimizer(small_catalog))
        with pytest.raises(AdvisorError):
            advisor.recommend([])

    def test_unknown_cost_model_rejected(self, small_catalog):
        with pytest.raises(AdvisorError):
            IndexAdvisor(
                small_catalog, Optimizer(small_catalog), AdvisorOptions(cost_model="magic")
            )


class TestCostModelChoices:
    def test_inum_and_pinum_agree_on_selection_quality(self, small_catalog, workload):
        results = {}
        for mode in ("pinum", "inum"):
            advisor = IndexAdvisor(
                small_catalog,
                Optimizer(small_catalog),
                AdvisorOptions(space_budget_bytes=megabytes(512), cost_model=mode,
                               max_candidates=20),
            )
            results[mode] = advisor.recommend(workload)
        pinum_result, inum_result = results["pinum"], results["inum"]
        assert pinum_result.improvement_fraction == pytest.approx(
            inum_result.improvement_fraction, abs=0.15
        )
        # The whole point: PINUM needs far fewer optimizer calls to prepare.
        assert (
            pinum_result.preparation_optimizer_calls
            < inum_result.preparation_optimizer_calls
        )

    def test_optimizer_cost_model_works(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(256), cost_model="optimizer",
                           max_candidates=8),
        )
        result = advisor.recommend(workload)
        assert result.workload_cost_after <= result.workload_cost_before
        assert result.preparation_optimizer_calls == 0
