"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import Histogram
from repro.inum.access_costs import AccessCostInfo
from repro.inum.atomic_config import AtomicConfiguration
from repro.inum.cache import CachedSlot, CacheEntry, InumCache
from repro.inum.compiled import compile_cache, numpy_available
from repro.inum.cost_estimation import InumCostModel
from repro.catalog.index import Index
from repro.optimizer.cost_model import CostModel
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.optimizer.joinplanner import prune_subsumed_plans
from repro.optimizer.plan import AccessPath, HashJoinNode, ScanNode
from repro.pinum.cost_model import PinumCostModel
from repro.query.ast import ColumnRef, JoinPredicate
from repro.storage import pages
from repro.util.errors import PlanningError

_settings = settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)


# ---------------------------------------------------------------------------
# Storage layout arithmetic
# ---------------------------------------------------------------------------


class TestPageArithmeticProperties:
    @_settings
    @given(width=st.integers(min_value=0, max_value=10_000),
           alignment=st.sampled_from([1, 2, 4, 8]))
    def test_alignment_properties(self, width, alignment):
        aligned = pages.align_to(width, alignment)
        assert aligned >= width
        assert aligned % alignment == 0
        assert aligned - width < alignment

    @_settings
    @given(rows=st.integers(min_value=0, max_value=10_000_000),
           width=st.integers(min_value=8, max_value=2_000))
    def test_heap_pages_monotone_in_rows(self, rows, width):
        assert pages.heap_pages(rows + 1000, width) >= pages.heap_pages(rows, width)
        assert pages.heap_pages(rows, width) >= 1

    @_settings
    @given(rows=st.integers(min_value=1, max_value=10_000_000),
           width=st.integers(min_value=8, max_value=500))
    def test_internal_pages_never_dominate(self, rows, width):
        leaves = pages.btree_leaf_pages(rows, width)
        internal = pages.btree_internal_pages(leaves, width)
        assert internal <= leaves


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogramProperties:
    @_settings
    @given(
        low=st.integers(min_value=0, max_value=1000),
        span=st.integers(min_value=0, max_value=100_000),
        rows=st.integers(min_value=1, max_value=1_000_000),
        probe=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_selectivity_below_is_bounded_and_monotone(self, low, span, rows, probe):
        histogram = Histogram.uniform(low, low + span, rows)
        value = histogram.selectivity_below(probe)
        assert 0.0 <= value <= 1.0
        assert histogram.selectivity_below(probe + 10) >= value - 1e-9

    @_settings
    @given(
        values=st.lists(st.integers(min_value=-10_000, max_value=10_000), min_size=1, max_size=200),
    )
    def test_from_values_total_and_full_range(self, values):
        histogram = Histogram.from_values(values)
        assert histogram.total == len(values)
        assert histogram.selectivity_between(min(values), max(values)) == pytest.approx(1.0, abs=1e-6)

    @_settings
    @given(
        low=st.integers(min_value=0, max_value=100),
        span=st.integers(min_value=1, max_value=10_000),
        rows=st.integers(min_value=1, max_value=100_000),
        a=st.floats(min_value=0, max_value=1),
        b=st.floats(min_value=0, max_value=1),
    )
    def test_range_selectivity_additive(self, low, span, rows, a, b):
        """sel[lo, m] + sel(m, hi] ~ sel[lo, hi] for any split point."""
        histogram = Histogram.uniform(low, low + span, rows)
        lo, hi = low, low + span
        split = lo + (hi - lo) * min(a, b)
        left = histogram.selectivity_between(lo, split)
        whole = histogram.selectivity_between(lo, hi)
        assert left <= whole + 1e-9


# ---------------------------------------------------------------------------
# Interesting-order combinations and atomic configurations
# ---------------------------------------------------------------------------


_tables = ["t1", "t2", "t3", "t4"]
_orders = ["a", "b", None]


def ioc_strategy():
    return st.fixed_dictionaries({t: st.sampled_from(_orders) for t in _tables}).map(
        InterestingOrderCombination
    )


class TestIocProperties:
    @_settings
    @given(ioc=ioc_strategy())
    def test_subset_reflexive(self, ioc):
        assert ioc.is_subset_of(ioc)

    @_settings
    @given(a=ioc_strategy(), b=ioc_strategy(), c=ioc_strategy())
    def test_subset_transitive(self, a, b, c):
        if a.is_subset_of(b) and b.is_subset_of(c):
            assert a.is_subset_of(c)

    @_settings
    @given(a=ioc_strategy(), b=ioc_strategy())
    def test_equality_consistent_with_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @_settings
    @given(ioc=ioc_strategy())
    def test_covering_configuration_covers(self, ioc):
        indexes = [Index(table, [order]) for table, order in ioc.non_empty_orders]
        assert AtomicConfiguration(indexes).covers(ioc)

    @_settings
    @given(ioc=ioc_strategy())
    def test_empty_configuration_covers_only_empty(self, ioc):
        empty = AtomicConfiguration([])
        assert empty.covers(ioc) == (ioc.order_count == 0)


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModelProperties:
    @_settings
    @given(
        pages_=st.integers(min_value=1, max_value=1_000_000),
        rows=st.floats(min_value=1, max_value=1e8),
        sel_a=st.floats(min_value=0.0, max_value=1.0),
        sel_b=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_index_scan_monotone_in_selectivity(self, pages_, rows, sel_a, sel_b):
        model = CostModel()
        low, high = sorted([sel_a, sel_b])
        cheap = model.index_scan(pages_ // 10 + 1, pages_, rows, low)
        pricey = model.index_scan(pages_ // 10 + 1, pages_, rows, high)
        assert cheap <= pricey + 1e-6

    @_settings
    @given(
        rows_a=st.floats(min_value=1, max_value=1e7),
        rows_b=st.floats(min_value=1, max_value=1e7),
        width=st.integers(min_value=8, max_value=512),
    )
    def test_sort_monotone_in_rows(self, rows_a, rows_b, width):
        model = CostModel()
        low, high = sorted([rows_a, rows_b])
        assert model.sort(0.0, low, width) <= model.sort(0.0, high, width) + 1e-6

    @_settings
    @given(costs=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=2),
           rows=st.floats(min_value=1, max_value=1e6))
    def test_joins_cost_at_least_inputs(self, costs, rows):
        model = CostModel()
        outer_cost, inner_cost = costs
        assert model.hash_join(outer_cost, inner_cost, rows, rows, rows) >= outer_cost + inner_cost
        assert model.merge_join(outer_cost, inner_cost, rows, rows, rows) >= outer_cost + inner_cost


# ---------------------------------------------------------------------------
# Compiled cache evaluation vs the scalar INUM arithmetic
# ---------------------------------------------------------------------------


class _StubQuery:
    """The minimal query surface an :class:`InumCache` needs (name + tables)."""

    def __init__(self, tables):
        self.name = "synthetic"
        self.tables = list(tables)


_cache_tables = ["alpha", "beta", "gamma"]
_cache_orders = [None, "k1", "k2"]
_cost = st.floats(min_value=0.1, max_value=1e6, allow_nan=False, allow_infinity=False)
_maybe_cost = st.one_of(st.none(), _cost)


@st.composite
def cache_with_indexes(draw):
    """A randomized plan cache plus the candidate indexes its costs cover."""
    tables = draw(st.lists(st.sampled_from(_cache_tables), min_size=1, max_size=3, unique=True))
    cache = InumCache(_StubQuery(tables))
    indexes = []
    for table in tables:
        # A stray provided_order on a heap record (possible in hand-built or
        # deserialized caches) must not make it satisfy ordered slots.
        cache.access_costs.add(
            AccessCostInfo(
                table=table,
                index_key=None,
                full_cost=draw(_cost),
                probe_cost=draw(_maybe_cost),
                provided_order=draw(st.sampled_from(_cache_orders)),
            )
        )
        for number in range(draw(st.integers(min_value=0, max_value=3))):
            index = Index(table, [f"col{number}"])
            cache.access_costs.add(
                AccessCostInfo(
                    table=table,
                    index_key=index.key,
                    full_cost=draw(_cost),
                    probe_cost=draw(_maybe_cost),
                    provided_order=draw(st.sampled_from(_cache_orders)),
                )
            )
            indexes.append(index)
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        slots = []
        ioc_orders = {}
        for table in tables:
            ioc_orders[table] = draw(st.sampled_from(_cache_orders))
            for _ in range(draw(st.integers(min_value=0, max_value=2))):
                parameterized = draw(st.booleans())
                slots.append(
                    CachedSlot(
                        table=table,
                        required_order=draw(st.sampled_from(_cache_orders)),
                        multiplier=(
                            draw(st.floats(min_value=0.5, max_value=100.0))
                            if parameterized
                            else 1.0
                        ),
                        parameterized=parameterized,
                    )
                )
        cache.add_entry(
            CacheEntry(
                ioc=InterestingOrderCombination(ioc_orders),
                internal_cost=draw(_cost),
                slots=tuple(slots),
                uses_nestloop=draw(st.booleans()),
            )
        )
    subset = draw(
        st.lists(st.sampled_from(indexes), unique_by=lambda index: index.key, max_size=6)
        if indexes
        else st.just([])
    )
    if draw(st.booleans()):  # an index the cache never collected costs for
        subset = subset + [Index(tables[0], ["uncollected"])]
    return cache, subset


class TestCompiledEngineProperties:
    @_settings
    @given(data=cache_with_indexes())
    def test_backends_match_scalar_model_exactly(self, data):
        """Every backend reproduces the scalar cost and winning entry."""
        cache, subset = data
        scalar = InumCostModel(cache)
        try:
            expected_cost, expected_entry = scalar.estimate_with_indexes_detail(subset)
        except PlanningError:
            expected_cost = expected_entry = None
        backends = ["python"] + (["numpy"] if numpy_available() else [])
        for backend in backends:
            engine = compile_cache(cache, backend=backend)
            if expected_cost is None:
                with pytest.raises(PlanningError):
                    engine.estimate_detail(subset)
                continue
            detail = engine.estimate_detail(subset)
            assert detail.cost == pytest.approx(expected_cost, rel=1e-9, abs=1e-9)
            if detail.entry is not expected_entry:
                # An exact tie between entries: both must cost the same.
                costs = engine.entry_costs(subset)
                expected_position = cache.entries.index(expected_entry)
                assert costs[expected_position] == pytest.approx(
                    costs[detail.entry_position], rel=1e-9, abs=1e-9
                )

    @_settings
    @given(data=cache_with_indexes())
    def test_pinum_model_and_batch_agree(self, data):
        """PINUM's model (same arithmetic) and batched evaluation also match."""
        cache, subset = data
        pinum = PinumCostModel(cache)
        backends = ["python"] + (["numpy"] if numpy_available() else [])
        for backend in backends:
            engine = compile_cache(cache, backend=backend)
            try:
                expected = pinum.estimate_with_indexes(subset)
            except PlanningError:
                continue
            assert engine.estimate(subset) == pytest.approx(expected, rel=1e-9, abs=1e-9)
            batch = engine.estimate_batch([subset, subset])
            assert batch[0] == batch[1]
            assert batch[0] == pytest.approx(expected, rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# Plan decomposition and subsumption pruning
# ---------------------------------------------------------------------------


def _plan_with_costs(seq_cost: float, idx_cost: float, join_cost_extra: float):
    outer = ScanNode(AccessPath(table="t1", method="seqscan", cost=seq_cost, rows=100, covering=True))
    inner = ScanNode(
        AccessPath(
            table="t2", method="indexscan", cost=idx_cost, rows=100,
            index=Index("t2", ["a"]), provided_order="a",
        )
    )
    join = JoinPredicate(ColumnRef("t1", "x"), ColumnRef("t2", "a"))
    total = seq_cost + idx_cost + join_cost_extra
    return HashJoinNode(outer, inner, join, total, 100)


class TestPlanProperties:
    @_settings
    @given(
        seq_cost=st.floats(min_value=0, max_value=1e6),
        idx_cost=st.floats(min_value=0, max_value=1e6),
        extra=st.floats(min_value=0, max_value=1e6),
    )
    def test_internal_plus_access_equals_total(self, seq_cost, idx_cost, extra):
        plan = _plan_with_costs(seq_cost, idx_cost, extra)
        assert plan.internal_cost() + plan.access_cost() == pytest.approx(plan.total_cost, rel=1e-9, abs=1e-6)

    @_settings
    @given(data=st.data())
    def test_pruning_keeps_cheapest_and_empty_ioc(self, data):
        """Pruned sets always retain a plan at least as cheap as every pruned one."""
        n = data.draw(st.integers(min_value=1, max_value=6))
        plans = {}
        for i in range(n):
            order = data.draw(st.sampled_from(["a", "b", None]), label=f"order{i}")
            cost = data.draw(st.floats(min_value=1, max_value=1e6), label=f"cost{i}")
            outer = ScanNode(AccessPath(table="t1", method="seqscan", cost=cost / 2, rows=10, covering=True))
            inner_path = (
                AccessPath(table="t2", method="seqscan", cost=cost / 2, rows=10, covering=True)
                if order is None
                else AccessPath(table="t2", method="indexscan", cost=cost / 2, rows=10,
                                index=Index("t2", [order]), provided_order=order)
            )
            inner = ScanNode(inner_path)
            join = JoinPredicate(ColumnRef("t1", "x"), ColumnRef("t2", order or "y"))
            plan = HashJoinNode(outer, inner, join, cost, 10)
            ioc = InterestingOrderCombination({"t1": None, "t2": order})
            incumbent = plans.get(ioc)
            if incumbent is None or plan.total_cost < incumbent.total_cost:
                plans[ioc] = plan
        pruned = prune_subsumed_plans(plans)
        assert pruned  # never empties the set
        cheapest_overall = min(p.total_cost for p in plans.values())
        assert min(p.total_cost for p in pruned.values()) == pytest.approx(cheapest_overall)
        # Every surviving plan is not subsumed by another survivor.
        for ioc_b, plan_b in pruned.items():
            for ioc_a, plan_a in pruned.items():
                if ioc_a is ioc_b:
                    continue
                assert not (ioc_a.is_subset_of(ioc_b) and plan_a.total_cost < plan_b.total_cost)
