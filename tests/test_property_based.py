"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.statistics import Histogram
from repro.inum.atomic_config import AtomicConfiguration
from repro.catalog.index import Index
from repro.optimizer.cost_model import CostModel
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.optimizer.joinplanner import prune_subsumed_plans
from repro.optimizer.plan import AccessPath, HashJoinNode, ScanNode
from repro.query.ast import ColumnRef, JoinPredicate
from repro.storage import pages

_settings = settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)


# ---------------------------------------------------------------------------
# Storage layout arithmetic
# ---------------------------------------------------------------------------


class TestPageArithmeticProperties:
    @_settings
    @given(width=st.integers(min_value=0, max_value=10_000),
           alignment=st.sampled_from([1, 2, 4, 8]))
    def test_alignment_properties(self, width, alignment):
        aligned = pages.align_to(width, alignment)
        assert aligned >= width
        assert aligned % alignment == 0
        assert aligned - width < alignment

    @_settings
    @given(rows=st.integers(min_value=0, max_value=10_000_000),
           width=st.integers(min_value=8, max_value=2_000))
    def test_heap_pages_monotone_in_rows(self, rows, width):
        assert pages.heap_pages(rows + 1000, width) >= pages.heap_pages(rows, width)
        assert pages.heap_pages(rows, width) >= 1

    @_settings
    @given(rows=st.integers(min_value=1, max_value=10_000_000),
           width=st.integers(min_value=8, max_value=500))
    def test_internal_pages_never_dominate(self, rows, width):
        leaves = pages.btree_leaf_pages(rows, width)
        internal = pages.btree_internal_pages(leaves, width)
        assert internal <= leaves


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogramProperties:
    @_settings
    @given(
        low=st.integers(min_value=0, max_value=1000),
        span=st.integers(min_value=0, max_value=100_000),
        rows=st.integers(min_value=1, max_value=1_000_000),
        probe=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_selectivity_below_is_bounded_and_monotone(self, low, span, rows, probe):
        histogram = Histogram.uniform(low, low + span, rows)
        value = histogram.selectivity_below(probe)
        assert 0.0 <= value <= 1.0
        assert histogram.selectivity_below(probe + 10) >= value - 1e-9

    @_settings
    @given(
        values=st.lists(st.integers(min_value=-10_000, max_value=10_000), min_size=1, max_size=200),
    )
    def test_from_values_total_and_full_range(self, values):
        histogram = Histogram.from_values(values)
        assert histogram.total == len(values)
        assert histogram.selectivity_between(min(values), max(values)) == pytest.approx(1.0, abs=1e-6)

    @_settings
    @given(
        low=st.integers(min_value=0, max_value=100),
        span=st.integers(min_value=1, max_value=10_000),
        rows=st.integers(min_value=1, max_value=100_000),
        a=st.floats(min_value=0, max_value=1),
        b=st.floats(min_value=0, max_value=1),
    )
    def test_range_selectivity_additive(self, low, span, rows, a, b):
        """sel[lo, m] + sel(m, hi] ~ sel[lo, hi] for any split point."""
        histogram = Histogram.uniform(low, low + span, rows)
        lo, hi = low, low + span
        split = lo + (hi - lo) * min(a, b)
        left = histogram.selectivity_between(lo, split)
        whole = histogram.selectivity_between(lo, hi)
        assert left <= whole + 1e-9


# ---------------------------------------------------------------------------
# Interesting-order combinations and atomic configurations
# ---------------------------------------------------------------------------


_tables = ["t1", "t2", "t3", "t4"]
_orders = ["a", "b", None]


def ioc_strategy():
    return st.fixed_dictionaries({t: st.sampled_from(_orders) for t in _tables}).map(
        InterestingOrderCombination
    )


class TestIocProperties:
    @_settings
    @given(ioc=ioc_strategy())
    def test_subset_reflexive(self, ioc):
        assert ioc.is_subset_of(ioc)

    @_settings
    @given(a=ioc_strategy(), b=ioc_strategy(), c=ioc_strategy())
    def test_subset_transitive(self, a, b, c):
        if a.is_subset_of(b) and b.is_subset_of(c):
            assert a.is_subset_of(c)

    @_settings
    @given(a=ioc_strategy(), b=ioc_strategy())
    def test_equality_consistent_with_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @_settings
    @given(ioc=ioc_strategy())
    def test_covering_configuration_covers(self, ioc):
        indexes = [Index(table, [order]) for table, order in ioc.non_empty_orders]
        assert AtomicConfiguration(indexes).covers(ioc)

    @_settings
    @given(ioc=ioc_strategy())
    def test_empty_configuration_covers_only_empty(self, ioc):
        empty = AtomicConfiguration([])
        assert empty.covers(ioc) == (ioc.order_count == 0)


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


class TestCostModelProperties:
    @_settings
    @given(
        pages_=st.integers(min_value=1, max_value=1_000_000),
        rows=st.floats(min_value=1, max_value=1e8),
        sel_a=st.floats(min_value=0.0, max_value=1.0),
        sel_b=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_index_scan_monotone_in_selectivity(self, pages_, rows, sel_a, sel_b):
        model = CostModel()
        low, high = sorted([sel_a, sel_b])
        cheap = model.index_scan(pages_ // 10 + 1, pages_, rows, low)
        pricey = model.index_scan(pages_ // 10 + 1, pages_, rows, high)
        assert cheap <= pricey + 1e-6

    @_settings
    @given(
        rows_a=st.floats(min_value=1, max_value=1e7),
        rows_b=st.floats(min_value=1, max_value=1e7),
        width=st.integers(min_value=8, max_value=512),
    )
    def test_sort_monotone_in_rows(self, rows_a, rows_b, width):
        model = CostModel()
        low, high = sorted([rows_a, rows_b])
        assert model.sort(0.0, low, width) <= model.sort(0.0, high, width) + 1e-6

    @_settings
    @given(costs=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=2),
           rows=st.floats(min_value=1, max_value=1e6))
    def test_joins_cost_at_least_inputs(self, costs, rows):
        model = CostModel()
        outer_cost, inner_cost = costs
        assert model.hash_join(outer_cost, inner_cost, rows, rows, rows) >= outer_cost + inner_cost
        assert model.merge_join(outer_cost, inner_cost, rows, rows, rows) >= outer_cost + inner_cost


# ---------------------------------------------------------------------------
# Plan decomposition and subsumption pruning
# ---------------------------------------------------------------------------


def _plan_with_costs(seq_cost: float, idx_cost: float, join_cost_extra: float):
    outer = ScanNode(AccessPath(table="t1", method="seqscan", cost=seq_cost, rows=100, covering=True))
    inner = ScanNode(
        AccessPath(
            table="t2", method="indexscan", cost=idx_cost, rows=100,
            index=Index("t2", ["a"]), provided_order="a",
        )
    )
    join = JoinPredicate(ColumnRef("t1", "x"), ColumnRef("t2", "a"))
    total = seq_cost + idx_cost + join_cost_extra
    return HashJoinNode(outer, inner, join, total, 100)


class TestPlanProperties:
    @_settings
    @given(
        seq_cost=st.floats(min_value=0, max_value=1e6),
        idx_cost=st.floats(min_value=0, max_value=1e6),
        extra=st.floats(min_value=0, max_value=1e6),
    )
    def test_internal_plus_access_equals_total(self, seq_cost, idx_cost, extra):
        plan = _plan_with_costs(seq_cost, idx_cost, extra)
        assert plan.internal_cost() + plan.access_cost() == pytest.approx(plan.total_cost, rel=1e-9, abs=1e-6)

    @_settings
    @given(data=st.data())
    def test_pruning_keeps_cheapest_and_empty_ioc(self, data):
        """Pruned sets always retain a plan at least as cheap as every pruned one."""
        n = data.draw(st.integers(min_value=1, max_value=6))
        plans = {}
        for i in range(n):
            order = data.draw(st.sampled_from(["a", "b", None]), label=f"order{i}")
            cost = data.draw(st.floats(min_value=1, max_value=1e6), label=f"cost{i}")
            outer = ScanNode(AccessPath(table="t1", method="seqscan", cost=cost / 2, rows=10, covering=True))
            inner_path = (
                AccessPath(table="t2", method="seqscan", cost=cost / 2, rows=10, covering=True)
                if order is None
                else AccessPath(table="t2", method="indexscan", cost=cost / 2, rows=10,
                                index=Index("t2", [order]), provided_order=order)
            )
            inner = ScanNode(inner_path)
            join = JoinPredicate(ColumnRef("t1", "x"), ColumnRef("t2", order or "y"))
            plan = HashJoinNode(outer, inner, join, cost, 10)
            ioc = InterestingOrderCombination({"t1": None, "t2": order})
            incumbent = plans.get(ioc)
            if incumbent is None or plan.total_cost < incumbent.total_cost:
                plans[ioc] = plan
        pruned = prune_subsumed_plans(plans)
        assert pruned  # never empties the set
        cheapest_overall = min(p.total_cost for p in plans.values())
        assert min(p.total_cost for p in pruned.values()) == pytest.approx(cheapest_overall)
        # Every surviving plan is not subsumed by another survivor.
        for ioc_b, plan_b in pruned.items():
            for ioc_a, plan_a in pruned.items():
                if ioc_a is ioc_b:
                    continue
                assert not (ioc_a.is_subset_of(ioc_b) and plan_a.total_cost < plan_b.total_cost)
