"""Tests for histograms and table/column statistics."""

import pytest

from repro.catalog.schema import Column, ColumnType, Table
from repro.catalog.statistics import (
    ColumnStatistics,
    Histogram,
    TableStatistics,
    statistics_from_rows,
)
from repro.util.errors import CatalogError


class TestHistogram:
    def test_uniform_total_matches_rows(self):
        histogram = Histogram.uniform(1, 1000, 10_000, buckets=10)
        assert histogram.total == 10_000

    def test_selectivity_below_extremes(self):
        histogram = Histogram.uniform(1, 1000, 10_000)
        assert histogram.selectivity_below(0) == 0.0
        assert histogram.selectivity_below(1000) == 1.0

    def test_selectivity_below_midpoint(self):
        histogram = Histogram.uniform(0, 1000, 10_000)
        assert histogram.selectivity_below(500) == pytest.approx(0.5, abs=0.05)

    def test_selectivity_between(self):
        histogram = Histogram.uniform(0, 1000, 10_000)
        assert histogram.selectivity_between(100, 200) == pytest.approx(0.1, abs=0.02)

    def test_selectivity_between_reversed_is_zero(self):
        histogram = Histogram.uniform(0, 1000, 10_000)
        assert histogram.selectivity_between(200, 100) == 0.0

    def test_degenerate_single_value(self):
        histogram = Histogram.uniform(5, 5, 100)
        assert histogram.total == 100
        assert histogram.selectivity_below(5) == 1.0
        assert histogram.selectivity_below(4) == 0.0

    def test_from_values(self):
        histogram = Histogram.from_values([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], buckets=5)
        assert histogram.total == 10
        assert histogram.selectivity_between(1, 10) == pytest.approx(1.0)

    def test_from_values_single_value(self):
        histogram = Histogram.from_values([7, 7, 7])
        assert histogram.total == 3

    def test_from_values_empty_rejected(self):
        with pytest.raises(CatalogError):
            Histogram.from_values([])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(CatalogError):
            Histogram([10, 5], [3])
        with pytest.raises(CatalogError):
            Histogram([1, 2, 3], [5])  # wrong count length

    def test_negative_counts_rejected(self):
        with pytest.raises(CatalogError):
            Histogram([0, 1], [-1])


class TestColumnStatistics:
    def test_equality_selectivity_uses_ndv(self):
        stats = ColumnStatistics(n_distinct=100)
        assert stats.equality_selectivity() == pytest.approx(0.01)

    def test_equality_selectivity_with_nulls(self):
        stats = ColumnStatistics(n_distinct=100, null_fraction=0.5)
        assert stats.equality_selectivity() == pytest.approx(0.005)

    def test_equality_selectivity_zero_ndv_default(self):
        stats = ColumnStatistics(n_distinct=0)
        assert 0 < stats.equality_selectivity() < 1

    def test_range_selectivity_without_histogram_is_default(self):
        stats = ColumnStatistics(n_distinct=10)
        assert stats.range_selectivity(1, 5) == pytest.approx(1.0 / 3.0)

    def test_range_selectivity_with_histogram(self):
        stats = ColumnStatistics(
            n_distinct=1000,
            min_value=0,
            max_value=1000,
            histogram=Histogram.uniform(0, 1000, 10_000),
        )
        assert stats.range_selectivity(0, 100) == pytest.approx(0.1, abs=0.02)

    def test_invalid_null_fraction(self):
        with pytest.raises(CatalogError):
            ColumnStatistics(n_distinct=1, null_fraction=1.5)

    def test_invalid_correlation(self):
        with pytest.raises(CatalogError):
            ColumnStatistics(n_distinct=1, correlation=2.0)


class TestTableStatistics:
    def _table(self):
        return Table("t", [Column("id", ColumnType.BIGINT), Column("v", ColumnType.INTEGER)],
                     primary_key="id")

    def test_uniform_builds_stats_for_every_column(self):
        stats = TableStatistics.uniform(self._table(), 10_000)
        assert stats.row_count == 10_000
        assert stats.column("id").n_distinct > 0
        assert stats.column("v").histogram is not None

    def test_primary_key_is_correlated(self):
        stats = TableStatistics.uniform(self._table(), 10_000)
        assert stats.column("id").correlation == 1.0
        assert stats.column("v").correlation == 0.0

    def test_heap_pages_grow_with_rows(self):
        small = TableStatistics.uniform(self._table(), 10_000)
        large = TableStatistics.uniform(self._table(), 100_000)
        assert large.heap_pages > small.heap_pages
        assert large.heap_bytes == large.heap_pages * 8192

    def test_unknown_column_rejected(self):
        stats = TableStatistics.uniform(self._table(), 100)
        with pytest.raises(CatalogError):
            stats.column("missing")

    def test_negative_rows_rejected(self):
        with pytest.raises(CatalogError):
            TableStatistics(self._table(), -1)

    def test_distinct_values_clamped_to_rows(self):
        stats = TableStatistics.uniform(self._table(), 100, max_value=10_000)
        assert stats.distinct_values("v") <= 100

    def test_missing_column_stats_synthesised(self):
        stats = TableStatistics(self._table(), 1000, {})
        derived = stats.column("v")
        assert derived.n_distinct > 0


class TestStatisticsFromRows:
    def test_ndv_and_range(self):
        table = Table("t", [Column("a", ColumnType.INTEGER)])
        rows = [{"a": i % 10} for i in range(100)]
        stats = statistics_from_rows(table, rows)
        assert stats.row_count == 100
        assert stats.column("a").n_distinct == 10
        assert stats.column("a").min_value == 0
        assert stats.column("a").max_value == 9

    def test_handles_all_null_column(self):
        table = Table("t", [Column("a", ColumnType.INTEGER, nullable=True)])
        stats = statistics_from_rows(table, [{"a": None}, {"a": None}])
        assert stats.column("a").null_fraction == 1.0
