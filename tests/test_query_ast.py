"""Tests for the query AST."""

import pytest

from repro.query.ast import (
    Aggregate,
    AggregateFunction,
    ColumnRef,
    Comparison,
    JoinPredicate,
    OrderByItem,
    Predicate,
    Query,
)
from repro.util.errors import QueryError


class TestColumnRef:
    def test_requires_table_and_column(self):
        with pytest.raises(QueryError):
            ColumnRef("", "a")
        with pytest.raises(QueryError):
            ColumnRef("t", "")

    def test_str(self):
        assert str(ColumnRef("t", "a")) == "t.a"


class TestPredicate:
    def test_between_requires_two_values(self):
        with pytest.raises(QueryError):
            Predicate(ColumnRef("t", "a"), Comparison.BETWEEN, 1)

    def test_non_between_rejects_second_value(self):
        with pytest.raises(QueryError):
            Predicate(ColumnRef("t", "a"), Comparison.EQ, 1, 2)

    def test_table_property(self):
        predicate = Predicate(ColumnRef("t", "a"), Comparison.LT, 5)
        assert predicate.table == "t"


class TestJoinPredicate:
    def test_self_join_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate(ColumnRef("t", "a"), ColumnRef("t", "b"))

    def test_column_for_and_other(self):
        join = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert join.column_for("a").column == "x"
        assert join.other("a").table == "b"
        with pytest.raises(QueryError):
            join.column_for("c")

    def test_tables(self):
        join = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert join.tables == frozenset({"a", "b"})


class TestAggregate:
    def test_count_star_allowed(self):
        agg = Aggregate(AggregateFunction.COUNT)
        assert str(agg) == "count(*)"

    def test_sum_requires_column(self):
        with pytest.raises(QueryError):
            Aggregate(AggregateFunction.SUM)


class TestQuery:
    def _query(self, **overrides):
        defaults = dict(
            name="q",
            tables=("a", "b"),
            select_columns=(ColumnRef("a", "x"),),
            joins=(JoinPredicate(ColumnRef("a", "id"), ColumnRef("b", "a_id")),),
        )
        defaults.update(overrides)
        return Query(**defaults)

    def test_valid_query(self):
        query = self._query()
        assert query.table_count == 2

    def test_requires_tables(self):
        with pytest.raises(QueryError):
            self._query(tables=())

    def test_requires_output(self):
        with pytest.raises(QueryError):
            self._query(select_columns=(), aggregates=())

    def test_duplicate_tables_rejected(self):
        with pytest.raises(QueryError):
            self._query(tables=("a", "a"))

    def test_reference_outside_from_rejected(self):
        with pytest.raises(QueryError):
            self._query(select_columns=(ColumnRef("z", "x"),))

    def test_columns_of(self):
        query = self._query(
            filters=(Predicate(ColumnRef("a", "y"), Comparison.GT, 1),),
            order_by=(OrderByItem(ColumnRef("a", "x")),),
        )
        assert query.columns_of("a") == ["x", "y", "id"] or set(query.columns_of("a")) == {"x", "y", "id"}

    def test_filters_on_and_joins_involving(self):
        query = self._query(filters=(Predicate(ColumnRef("b", "v"), Comparison.EQ, 3),))
        assert len(query.filters_on("b")) == 1
        assert query.filters_on("a") == []
        assert len(query.joins_involving("a")) == 1

    def test_join_columns_of(self):
        query = self._query()
        assert query.join_columns_of("a") == ["id"]
        assert query.join_columns_of("b") == ["a_id"]

    def test_group_and_order_columns_of(self):
        query = self._query(
            group_by=(ColumnRef("a", "x"),),
            order_by=(OrderByItem(ColumnRef("b", "a_id")),),
            aggregates=(Aggregate(AggregateFunction.COUNT),),
        )
        assert query.group_by_columns_of("a") == ["x"]
        assert query.order_by_columns_of("b") == ["a_id"]
        assert query.has_aggregation

    def test_join_graph_edges_deduplicated(self):
        join = JoinPredicate(ColumnRef("a", "id"), ColumnRef("b", "a_id"))
        query = self._query(joins=(join, join))
        assert len(query.join_graph_edges()) == 1

    def test_to_sql_mentions_all_clauses(self):
        query = self._query(
            filters=(Predicate(ColumnRef("a", "y"), Comparison.BETWEEN, 1, 5),),
            group_by=(ColumnRef("a", "x"),),
            order_by=(OrderByItem(ColumnRef("a", "x")),),
            aggregates=(Aggregate(AggregateFunction.SUM, ColumnRef("b", "v")),),
        )
        sql = query.to_sql()
        assert "SELECT" in sql and "FROM" in sql and "WHERE" in sql
        assert "GROUP BY" in sql and "ORDER BY" in sql
        assert "BETWEEN" in sql
