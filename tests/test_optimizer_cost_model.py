"""Tests for the cost model's formulas and their qualitative trade-offs."""

import pytest

from repro.optimizer.cost_model import CostModel, CostParameters
from repro.util.errors import PlanningError


@pytest.fixture
def model():
    return CostModel()


class TestParameters:
    def test_defaults_are_postgres_like(self):
        params = CostParameters()
        assert params.seq_page_cost == 1.0
        assert params.random_page_cost == 4.0
        assert params.cpu_tuple_cost == 0.01

    def test_negative_parameter_rejected(self):
        with pytest.raises(PlanningError):
            CostParameters(seq_page_cost=-1)

    def test_invalid_work_mem_rejected(self):
        with pytest.raises(PlanningError):
            CostParameters(work_mem_pages=0)


class TestScans:
    def test_seq_scan_scales_with_pages(self, model):
        assert model.seq_scan(2000, 10_000) > model.seq_scan(1000, 10_000)

    def test_seq_scan_filter_clauses_add_cpu(self, model):
        assert model.seq_scan(1000, 10_000, filter_clauses=2) > model.seq_scan(1000, 10_000)

    def test_index_scan_cheaper_at_low_selectivity(self, model):
        expensive = model.index_scan(1000, 10_000, 1_000_000, selectivity=0.5)
        cheap = model.index_scan(1000, 10_000, 1_000_000, selectivity=0.001)
        assert cheap < expensive

    def test_selective_index_scan_beats_seq_scan(self, model):
        seq = model.seq_scan(10_000, 1_000_000)
        idx = model.index_scan(2_000, 10_000, 1_000_000, selectivity=0.001)
        assert idx < seq

    def test_full_uncorrelated_index_scan_worse_than_seq_scan(self, model):
        """Random heap fetches make a full non-covering index scan a bad idea."""
        seq = model.seq_scan(10_000, 1_000_000)
        idx = model.index_scan(2_000, 10_000, 1_000_000, selectivity=1.0, correlation=0.0)
        assert idx > seq

    def test_covering_index_scan_avoids_heap(self, model):
        covering = model.index_scan(2_000, 10_000, 1_000_000, 0.1, covering=True)
        fetching = model.index_scan(2_000, 10_000, 1_000_000, 0.1, covering=False)
        assert covering < fetching

    def test_correlation_reduces_heap_cost(self, model):
        clustered = model.index_scan(2_000, 10_000, 1_000_000, 0.1, correlation=1.0)
        scattered = model.index_scan(2_000, 10_000, 1_000_000, 0.1, correlation=0.0)
        assert clustered < scattered

    def test_index_probe_much_cheaper_than_full_scan(self, model):
        probe = model.index_probe(2_000, 1_000_000, rows_per_probe=2)
        full = model.index_scan(2_000, 10_000, 1_000_000, selectivity=1.0)
        assert probe < full / 100

    def test_selectivity_clamped(self, model):
        assert model.index_scan(100, 100, 1000, selectivity=2.0) == model.index_scan(
            100, 100, 1000, selectivity=1.0
        )


class TestSortAndAggregate:
    def test_sort_cost_superlinear(self, model):
        small = model.sort(0.0, 10_000, 50)
        large = model.sort(0.0, 100_000, 50)
        assert large > 10 * small

    def test_sort_includes_input_cost(self, model):
        assert model.sort(500.0, 1000, 50) >= 500.0

    def test_external_sort_pays_io(self, model):
        in_memory = model.sort(0.0, 10_000, 100)
        spilling = model.sort(0.0, 10_000_000, 100)
        # The spilling sort must include the write+read I/O term.
        assert spilling > in_memory
        assert spilling > model.sort(0.0, 10_000_000, 1)

    def test_sorted_aggregate_cheaper_than_hashed(self, model):
        hashed = model.aggregate_hashed(0.0, 100_000, 100, 1, 1)
        sorted_ = model.aggregate_sorted(0.0, 100_000, 100, 1, 1)
        assert sorted_ <= hashed


class TestJoins:
    def test_hash_join_includes_both_inputs(self, model):
        cost = model.hash_join(100.0, 200.0, 1000, 2000, 500)
        assert cost > 300.0

    def test_merge_join_includes_both_inputs(self, model):
        cost = model.merge_join(100.0, 200.0, 1000, 2000, 500)
        assert cost > 300.0

    def test_nested_loop_scales_with_outer_rows(self, model):
        few = model.nested_loop_join(100.0, 10, 5.0, 100)
        many = model.nested_loop_join(100.0, 10_000, 5.0, 100)
        assert many > few

    def test_nested_loop_attractive_at_low_outer_cardinality(self, model):
        """The Section V-D trade-off: NLJ wins when probes are few and cheap."""
        probe_cost = model.index_probe(1_000, 1_000_000, rows_per_probe=1)
        nlj = model.nested_loop_join(50.0, 100, probe_cost, 100)
        hash_join = model.hash_join(50.0, model.seq_scan(10_000, 1_000_000), 100, 1_000_000, 100)
        assert nlj < hash_join

    def test_nested_loop_degrades_with_access_cost(self, model):
        """And loses once per-probe access becomes expensive."""
        cheap_probe = model.nested_loop_join(50.0, 100_000, 2.0, 100_000)
        pricey_probe = model.nested_loop_join(50.0, 100_000, 50.0, 100_000)
        assert pricey_probe > cheap_probe

    def test_nestloop_penalty_added(self, model):
        base = model.nested_loop_join(10.0, 10, 1.0, 10)
        penalised = model.nested_loop_join(10.0, 10, 1.0, 10, nestloop_penalty=1e9)
        assert penalised == pytest.approx(base + 1e9)
