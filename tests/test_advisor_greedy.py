"""Tests for the greedy selection loop and the benefit oracles."""

import pytest

from repro.advisor.benefit import (
    CacheBackedWorkloadCostModel,
    OptimizerWorkloadCostModel,
)
from repro.advisor.candidates import CandidateGenerator
from repro.advisor.greedy import GreedySelector
from repro.optimizer import Optimizer
from repro.util.errors import AdvisorError
from repro.util.units import megabytes


@pytest.fixture
def workload(join_query, simple_query):
    return [join_query, simple_query]


@pytest.fixture
def candidates(small_catalog, workload):
    return CandidateGenerator(small_catalog).for_workload(workload)


class TestWorkloadCostModels:
    def test_optimizer_model_matches_whatif(self, small_catalog, workload):
        optimizer = Optimizer(small_catalog)
        model = OptimizerWorkloadCostModel(optimizer, workload)
        empty = model.workload_cost([])
        assert empty == pytest.approx(sum(model.per_query_costs([]).values()))
        assert model.preparation_optimizer_calls == 0

    def test_cache_model_requires_known_mode(self, small_catalog, workload, candidates):
        with pytest.raises(AdvisorError):
            CacheBackedWorkloadCostModel(Optimizer(small_catalog), workload, candidates, mode="bogus")

    def test_cache_model_answers_without_optimizer(self, small_catalog, workload, candidates):
        optimizer = Optimizer(small_catalog)
        model = CacheBackedWorkloadCostModel(optimizer, workload, candidates, mode="pinum")
        optimizer.reset_counters()
        model.workload_cost(candidates[:3])
        assert optimizer.call_count == 0
        assert model.preparation_optimizer_calls > 0

    def test_pinum_cache_model_tracks_optimizer_model(self, small_catalog, workload, candidates):
        optimizer = Optimizer(small_catalog)
        cache_model = CacheBackedWorkloadCostModel(optimizer, workload, candidates, mode="pinum")
        optimizer_model = OptimizerWorkloadCostModel(optimizer, workload)
        subset = candidates[:5]
        assert cache_model.workload_cost(subset) == pytest.approx(
            optimizer_model.workload_cost(subset), rel=0.2
        )

    def test_empty_workload_rejected(self, small_catalog):
        with pytest.raises(AdvisorError):
            OptimizerWorkloadCostModel(Optimizer(small_catalog), [])


class TestGreedySelector:
    def _model(self, small_catalog, workload, candidates):
        return CacheBackedWorkloadCostModel(
            Optimizer(small_catalog), workload, candidates, mode="pinum"
        )

    def test_selection_reduces_cost_monotonically(self, small_catalog, workload, candidates):
        model = self._model(small_catalog, workload, candidates)
        selector = GreedySelector(small_catalog, model, megabytes(512))
        steps = selector.select(candidates)
        assert steps
        for step in steps:
            assert step.workload_cost_after <= step.workload_cost_before
            assert step.benefit >= 0

    def test_budget_respected(self, small_catalog, workload, candidates):
        model = self._model(small_catalog, workload, candidates)
        budget = megabytes(64)
        selector = GreedySelector(small_catalog, model, budget)
        steps = selector.select(candidates)
        if steps:
            assert steps[-1].cumulative_size_bytes <= budget
            total = sum(small_catalog.index_size_bytes(step.chosen) for step in steps)
            assert total <= budget

    def test_tiny_budget_selects_nothing_oversized(self, small_catalog, workload, candidates):
        model = self._model(small_catalog, workload, candidates)
        selector = GreedySelector(small_catalog, model, space_budget_bytes=1024)
        steps = selector.select(candidates)
        assert steps == []

    def test_invalid_budget_rejected(self, small_catalog, workload, candidates):
        model = self._model(small_catalog, workload, candidates)
        with pytest.raises(AdvisorError):
            GreedySelector(small_catalog, model, 0)

    def test_no_duplicate_picks(self, small_catalog, workload, candidates):
        model = self._model(small_catalog, workload, candidates)
        selector = GreedySelector(small_catalog, model, megabytes(512))
        steps = selector.select(candidates)
        keys = [step.chosen.key for step in steps]
        assert len(keys) == len(set(keys))
