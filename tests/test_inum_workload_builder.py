"""Tests for the workload-scale cache builder."""

import dataclasses
import functools

import pytest

from repro.advisor import CandidateGenerator
from repro.inum import (
    CacheStore,
    WorkloadBuilderOptions,
    WorkloadCacheBuilder,
)
from repro.util.errors import ReproError
from repro.workloads import builtin_catalog_factory
from repro.workloads.tpch_like import (
    build_tpch_like_catalog,
    tpch_q5_like_query,
    tpch_small_join_query,
)

from conftest import build_join_query, build_simple_query


@pytest.fixture
def workload():
    return [build_join_query("wq_join"), build_simple_query("wq_scan")]


@pytest.fixture
def candidates(small_catalog, workload):
    return CandidateGenerator(small_catalog).for_workload(workload)


class TestSerialBuild:
    def test_builds_every_query(self, small_catalog, workload, candidates):
        result = WorkloadCacheBuilder(small_catalog).build(workload, candidates)
        assert set(result.caches) == {"wq_join", "wq_scan"}
        for query in workload:
            cache = result.cache_for(query)
            cache.validate()
        report = result.report
        assert report.queries_total == 2
        assert report.queries_built == 2
        assert report.optimizer_calls > 0
        assert report.wall_seconds > 0

    def test_inum_builder_reports_memoization_hits(self, small_catalog, workload, candidates):
        options = WorkloadBuilderOptions(builder="inum")
        result = WorkloadCacheBuilder(small_catalog, options).build(workload, candidates)
        assert result.report.whatif_cache_hits > 0
        assert result.report.whatif_hit_rate > 0

    def test_call_cache_can_be_disabled(self, small_catalog, workload, candidates):
        options = WorkloadBuilderOptions(builder="inum", use_call_cache=False)
        result = WorkloadCacheBuilder(small_catalog, options).build(workload, candidates)
        assert result.report.whatif_cache_hits == 0

    def test_identical_sql_built_once(self, small_catalog, candidates):
        query = build_join_query("wq_join")
        twin = dataclasses.replace(query, name="wq_join_again")
        result = WorkloadCacheBuilder(small_catalog).build([query, twin], candidates)
        report = result.report
        assert report.queries_built == 1
        assert report.queries_deduplicated == 1
        outcome = report.outcome_for("wq_join_again")
        assert outcome.source == "deduplicated"
        assert outcome.deduped_from == "wq_join"
        assert result.caches["wq_join_again"].entry_count == result.caches["wq_join"].entry_count

    def test_dedupe_can_be_disabled(self, small_catalog, candidates):
        query = build_join_query("wq_join")
        twin = dataclasses.replace(query, name="wq_join_again")
        options = WorkloadBuilderOptions(dedupe_queries=False)
        result = WorkloadCacheBuilder(small_catalog, options).build([query, twin], candidates)
        assert result.report.queries_built == 2

    def test_empty_workload_rejected(self, small_catalog):
        with pytest.raises(ReproError):
            WorkloadCacheBuilder(small_catalog).build([])

    def test_unknown_query_lookup_rejected(self, small_catalog, workload, candidates):
        result = WorkloadCacheBuilder(small_catalog).build(workload, candidates)
        with pytest.raises(ReproError):
            result.cache_for(build_join_query("never_built"))


class TestOptions:
    def test_unknown_builder_rejected(self):
        with pytest.raises(ReproError):
            WorkloadBuilderOptions(builder="bogus")

    def test_non_positive_jobs_rejected(self):
        with pytest.raises(ReproError):
            WorkloadBuilderOptions(jobs=0)

    def test_catalog_or_factory_required(self):
        with pytest.raises(ReproError):
            WorkloadCacheBuilder()

    def test_parallel_without_factory_rejected(self, small_catalog, workload, candidates):
        builder = WorkloadCacheBuilder(small_catalog, WorkloadBuilderOptions(jobs=2))
        with pytest.raises(ReproError):
            builder.build(workload, candidates)


class TestParallelBuild:
    def test_pool_build_matches_serial(self):
        factory = functools.partial(builtin_catalog_factory, "tpch")
        queries = [tpch_q5_like_query(), tpch_small_join_query()]
        catalog = build_tpch_like_catalog()
        candidates = CandidateGenerator(catalog).for_workload(queries)

        serial = WorkloadCacheBuilder(catalog).build(queries, candidates)
        parallel = WorkloadCacheBuilder(
            catalog, WorkloadBuilderOptions(jobs=2), catalog_factory=factory
        ).build(queries, candidates)

        assert parallel.report.jobs == 2
        for query in queries:
            fast, slow = parallel.caches[query.name], serial.caches[query.name]
            assert fast.entry_count == slow.entry_count
            assert len(fast.access_costs) == len(slow.access_costs)
            assert fast.build_stats.optimizer_calls_total == (
                slow.build_stats.optimizer_calls_total
            )


class TestStoreIntegration:
    def test_second_build_loads_from_store(self, tmp_path, small_catalog, workload, candidates):
        store = CacheStore(tmp_path, small_catalog)
        builder = WorkloadCacheBuilder(small_catalog, store=store)
        cold = builder.build(workload, candidates)
        assert cold.report.queries_built == 2
        assert store.stored_count() == 2

        warm = builder.build(workload, candidates)
        assert warm.report.queries_from_store == 2
        assert warm.report.queries_built == 0
        assert warm.report.optimizer_calls == 0
        for query in workload:
            assert warm.caches[query.name].entry_count == cold.caches[query.name].entry_count

    def test_changed_candidates_rebuild(self, tmp_path, small_catalog, workload, candidates):
        store = CacheStore(tmp_path, small_catalog)
        builder = WorkloadCacheBuilder(small_catalog, store=store)
        builder.build(workload, candidates)
        shrunk = builder.build(workload, candidates[:-1])
        assert shrunk.report.queries_built > 0
