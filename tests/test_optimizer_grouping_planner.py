"""Tests for the grouping planner: aggregation strategies and ordering."""

import pytest

from repro.catalog.index import Index
from repro.optimizer import Optimizer
from repro.optimizer.plan import AggregateNode, SortNode
from repro.query import QueryBuilder


class TestAggregation:
    def test_group_by_query_gets_aggregate_node(self, optimizer, join_query):
        plan = optimizer.optimize(join_query).plan
        assert any(isinstance(node, AggregateNode) for node in plan.walk())

    def test_scalar_aggregate_produces_single_row(self, small_catalog):
        query = (
            QueryBuilder("total")
            .aggregate("sum", "sales.s_amount")
            .from_tables("sales")
            .build()
        )
        plan = Optimizer(small_catalog).optimize(query).plan
        root = plan
        assert isinstance(root, AggregateNode)
        assert root.rows == 1.0
        assert root.strategy == "plain"

    def test_group_count_not_exceeding_input(self, optimizer, join_query):
        plan = optimizer.optimize(join_query).plan
        aggregate = next(node for node in plan.walk() if isinstance(node, AggregateNode))
        assert aggregate.rows <= aggregate.children[0].rows


class TestOrdering:
    def test_order_by_adds_sort_when_needed(self, small_catalog, simple_query):
        plan = Optimizer(small_catalog).optimize(simple_query).plan
        assert isinstance(plan, SortNode)

    def test_order_by_satisfied_by_index_skips_sort(self, small_catalog):
        """An index providing the requested order removes the top-level sort."""
        small_catalog.add_index(Index("sales", ["s_customer", "s_amount", "s_quantity"]))
        query = (
            QueryBuilder("ordered")
            .select("sales.s_amount", "sales.s_quantity")
            .from_tables("sales")
            .order_by("sales.s_customer")
            .build()
        )
        plan = Optimizer(small_catalog).optimize(query).plan
        assert not isinstance(plan, SortNode)

    def test_sorted_plan_costs_no_more_than_unsorted_plus_sort(self, small_catalog):
        query = (
            QueryBuilder("ordered")
            .select("sales.s_amount")
            .from_tables("sales")
            .order_by("sales.s_customer")
            .build()
        )
        unindexed_cost = Optimizer(small_catalog).optimize(query).cost
        small_catalog.add_index(Index("sales", ["s_customer", "s_amount"]))
        indexed_cost = Optimizer(small_catalog).optimize(query).cost
        assert indexed_cost <= unindexed_cost


class TestChooseBest:
    def test_choose_best_requires_candidates(self, small_catalog, join_query):
        from repro.optimizer.cost_model import CostModel
        from repro.optimizer.grouping_planner import GroupingPlanner
        from repro.optimizer.selectivity import SelectivityEstimator
        from repro.util.errors import PlanningError

        planner = GroupingPlanner(CostModel(), SelectivityEstimator(small_catalog))
        with pytest.raises(PlanningError):
            planner.choose_best(join_query, [])

    def test_finalize_all_preserves_count(self, small_catalog, join_query):
        from repro.optimizer.access_paths import AccessPathCollector
        from repro.optimizer.cost_model import CostModel
        from repro.optimizer.grouping_planner import GroupingPlanner
        from repro.optimizer.joinplanner import JoinPlanner
        from repro.optimizer.selectivity import SelectivityEstimator

        selectivity = SelectivityEstimator(small_catalog)
        collector = AccessPathCollector(small_catalog, CostModel(), selectivity)
        join_planner = JoinPlanner(CostModel(), selectivity)
        grouping = GroupingPlanner(CostModel(), selectivity)
        candidates = join_planner.plan(join_query, collector.collect(join_query)).candidates
        finalized = grouping.finalize_all(join_query, candidates)
        assert len(finalized) == len(candidates)
