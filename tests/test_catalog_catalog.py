"""Tests for the catalog registry and its what-if index overlays."""

import pytest

from repro.catalog import Catalog, Column, ForeignKey, Index, Table, TableStatistics
from repro.util.errors import CatalogError


class TestTables:
    def test_add_and_lookup(self, small_catalog):
        assert small_catalog.has_table("sales")
        assert small_catalog.table("sales").name == "sales"
        assert len(small_catalog.tables()) == 3

    def test_unknown_table_raises(self, small_catalog):
        with pytest.raises(CatalogError):
            small_catalog.table("nope")

    def test_duplicate_table_rejected(self, small_catalog):
        with pytest.raises(CatalogError):
            small_catalog.add_table(Table("sales", [Column("x")]))

    def test_validate_detects_broken_foreign_key(self):
        catalog = Catalog()
        broken = Table("child", [Column("pid")],
                       foreign_keys=[ForeignKey("pid", "ghost", "id")])
        catalog.add_table(broken, TableStatistics.uniform(broken, 10))
        with pytest.raises(CatalogError):
            catalog.validate()


class TestStatistics:
    def test_statistics_roundtrip(self, small_catalog):
        stats = small_catalog.statistics("sales")
        assert stats.row_count == 500_000

    def test_statistics_missing(self):
        catalog = Catalog()
        table = Table("t", [Column("a")])
        catalog.add_table(table)
        assert not catalog.has_statistics("t")
        with pytest.raises(CatalogError):
            catalog.statistics("t")

    def test_statistics_for_wrong_table_rejected(self, small_catalog):
        other = Table("other", [Column("a")])
        with pytest.raises(CatalogError):
            small_catalog.set_statistics("sales", TableStatistics.uniform(other, 10))


class TestIndexes:
    def test_add_drop_index(self, small_catalog, sample_index):
        small_catalog.add_index(sample_index)
        assert small_catalog.index(sample_index.name) == sample_index
        assert sample_index in small_catalog.indexes_on("sales")
        small_catalog.drop_index(sample_index.name)
        assert small_catalog.indexes_on("sales") == []

    def test_duplicate_index_name_rejected(self, small_catalog, sample_index):
        small_catalog.add_index(sample_index)
        with pytest.raises(CatalogError):
            small_catalog.add_index(Index("sales", ["s_customer"], name=sample_index.name))

    def test_drop_unknown_index_rejected(self, small_catalog):
        with pytest.raises(CatalogError):
            small_catalog.drop_index("ghost")

    def test_invalid_index_rejected(self, small_catalog):
        with pytest.raises(CatalogError):
            small_catalog.add_index(Index("sales", ["no_such_column"]))

    def test_drop_all_indexes(self, small_catalog, sample_index):
        small_catalog.add_index(sample_index)
        small_catalog.drop_all_indexes()
        assert small_catalog.all_indexes() == []


class TestOverlays:
    def test_with_indexes_adds_temporarily(self, small_catalog, sample_index):
        with small_catalog.with_indexes([sample_index]):
            assert sample_index in small_catalog.indexes_on("sales")
        assert small_catalog.indexes_on("sales") == []

    def test_only_indexes_hides_permanent(self, small_catalog, sample_index):
        permanent = Index("sales", ["s_product"], name="perm")
        small_catalog.add_index(permanent)
        with small_catalog.only_indexes([sample_index]):
            visible = small_catalog.indexes_on("sales")
            assert visible == [sample_index]
        assert small_catalog.indexes_on("sales") == [permanent]

    def test_only_indexes_empty_configuration(self, small_catalog, sample_index):
        small_catalog.add_index(sample_index)
        with small_catalog.only_indexes([]):
            assert small_catalog.all_indexes() == []

    def test_overlays_nest(self, small_catalog, sample_index):
        other = Index("products", ["p_category"])
        with small_catalog.only_indexes([sample_index]):
            with small_catalog.with_indexes([other]):
                names = {index.name for index in small_catalog.all_indexes()}
                assert names == {sample_index.name, other.name}
            assert small_catalog.all_indexes() == [sample_index]

    def test_overlay_restored_after_exception(self, small_catalog, sample_index):
        with pytest.raises(RuntimeError):
            with small_catalog.with_indexes([sample_index]):
                raise RuntimeError("boom")
        assert small_catalog.all_indexes() == []

    def test_overlay_validates_indexes(self, small_catalog):
        with pytest.raises(CatalogError):
            with small_catalog.with_indexes([Index("sales", ["bogus"])]):
                pass


class TestSizes:
    def test_database_size_positive(self, small_catalog):
        assert small_catalog.database_size_bytes() > 0

    def test_database_size_with_indexes_grows(self, small_catalog, sample_index):
        base = small_catalog.database_size_bytes(include_indexes=True)
        small_catalog.add_index(sample_index)
        assert small_catalog.database_size_bytes(include_indexes=True) > base

    def test_index_size_bytes(self, small_catalog, sample_index):
        assert small_catalog.index_size_bytes(sample_index) > 0

    def test_table_size_bytes(self, small_catalog):
        assert small_catalog.table_size_bytes("sales") > small_catalog.table_size_bytes("products")
