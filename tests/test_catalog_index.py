"""Tests for (what-if) index metadata and the size model."""

import pytest

from repro.catalog import Column, ColumnType, Index, Table, TableStatistics
from repro.util.errors import CatalogError


@pytest.fixture
def table():
    return Table(
        "orders",
        [
            Column("o_id", ColumnType.BIGINT),
            Column("o_customer", ColumnType.BIGINT),
            Column("o_total", ColumnType.FLOAT),
        ],
        primary_key="o_id",
    )


@pytest.fixture
def stats(table):
    return TableStatistics.uniform(table, 1_000_000)


class TestIndexIdentity:
    def test_equality_by_table_and_columns(self):
        a = Index("t", ["a", "b"], name="x")
        b = Index("t", ["a", "b"], name="y")
        assert a == b
        assert hash(a) == hash(b)

    def test_column_order_matters(self):
        assert Index("t", ["a", "b"]) != Index("t", ["b", "a"])

    def test_default_name(self):
        assert Index("t", ["a", "b"]).name == "idx_t_a_b"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Index("t", ["a", "a"])

    def test_empty_columns_rejected(self):
        with pytest.raises(CatalogError):
            Index("t", [])


class TestOrderCoverage:
    def test_covers_leading_column(self):
        index = Index("t", ["a", "b"])
        assert index.covers_order("a")
        assert not index.covers_order("b")

    def test_covers_empty_order(self):
        assert Index("t", ["a"]).covers_order(None)

    def test_covers_columns(self):
        index = Index("t", ["a", "b", "c"])
        assert index.covers_columns(["b", "c"])
        assert not index.covers_columns(["b", "z"])


class TestValidation:
    def test_validate_against_matching_table(self, table):
        Index("orders", ["o_customer"]).validate_against(table)

    def test_validate_wrong_table(self, table):
        with pytest.raises(CatalogError):
            Index("other", ["o_customer"]).validate_against(table)

    def test_validate_unknown_column(self, table):
        with pytest.raises(CatalogError):
            Index("orders", ["missing"]).validate_against(table)


class TestSizeModel:
    def test_leaf_pages_positive(self, stats):
        index = Index("orders", ["o_customer"])
        assert index.leaf_pages(stats) > 0

    def test_wider_index_is_larger(self, stats):
        narrow = Index("orders", ["o_customer"])
        wide = Index("orders", ["o_customer", "o_total"])
        assert wide.leaf_pages(stats) > narrow.leaf_pages(stats)

    def test_what_if_ignores_internal_pages(self, stats):
        """The paper's simplification: hypothetical indexes count only leaves."""
        hypothetical = Index("orders", ["o_customer"], hypothetical=True)
        materialized = hypothetical.materialized()
        assert materialized.size_in_pages(stats) > hypothetical.size_in_pages(stats)
        assert hypothetical.size_in_pages(stats) == hypothetical.leaf_pages(stats)

    def test_internal_pages_are_small_fraction(self, stats):
        index = Index("orders", ["o_customer"])
        assert index.internal_pages(stats) < 0.05 * index.leaf_pages(stats)

    def test_size_in_bytes_consistent_with_pages(self, stats):
        index = Index("orders", ["o_customer"])
        assert index.size_in_bytes(stats) == index.size_in_pages(stats) * 8192

    def test_materialized_copy_preserves_identity(self):
        index = Index("orders", ["o_customer"])
        assert index.materialized() == index
        assert index.materialized().hypothetical is False
