"""Tests for the command-line interface."""

import io
import json
from unittest import mock

import pytest

from repro.advisor.candidates import DEFAULT_MAX_CANDIDATES
from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.catalog == "star"
        assert args.command == "explain"

    def test_recommend_options(self):
        args = build_parser().parse_args(
            ["recommend", "--catalog", "tpch", "--budget-gb", "2", "--cost-model", "inum"]
        )
        assert args.budget_gb == 2.0
        assert args.cost_model == "inum"
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_cache_workload_options(self):
        args = build_parser().parse_args(
            ["cache-workload", "--catalog", "star", "--jobs", "4",
             "--cache-dir", ".inum-cache", "--builder", "inum"]
        )
        assert args.command == "cache-workload"
        assert args.jobs == 4
        assert args.cache_dir == ".inum-cache"
        assert args.builder == "inum"

    def test_recommend_and_cache_workload_share_max_candidates_default(self):
        # One shared constant on purpose: the cache store fingerprints caches
        # by candidate set, so differing defaults would give the two commands
        # disjoint persistent cache keys.
        recommend = build_parser().parse_args(["recommend"])
        workload = build_parser().parse_args(["cache-workload"])
        assert recommend.max_candidates == DEFAULT_MAX_CANDIDATES
        assert workload.max_candidates == DEFAULT_MAX_CANDIDATES

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--catalog", "tpch"])
        assert args.command == "serve"
        assert args.catalog == "tpch"
        assert args.max_candidates == DEFAULT_MAX_CANDIDATES
        assert args.candidate_policy == "workload"


class TestExplain:
    def test_explain_sql_on_tpch(self, capsys):
        code = main([
            "explain", "--catalog", "tpch", "--sql",
            "SELECT nation.n_name FROM nation, region "
            "WHERE nation.n_regionkey = region.r_regionkey ORDER BY nation.n_name",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "estimated cost" in out
        assert "Scan" in out

    def test_explain_builtin_query_number(self, capsys):
        code = main(["explain", "--catalog", "star", "--query-number", "1"])
        assert code == 0
        assert "Q1" in capsys.readouterr().out

    def test_explain_disable_nestloop(self, capsys):
        code = main([
            "explain", "--catalog", "tpch", "--query-number", "2", "--disable-nestloop",
        ])
        assert code == 0
        assert "Nestloop" not in capsys.readouterr().out

    def test_invalid_sql_reports_error(self, capsys):
        code = main(["explain", "--catalog", "tpch", "--sql", "SELECT FROM nowhere"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRecommend:
    def test_recommend_on_star_subset(self, capsys):
        code = main([
            "recommend", "--catalog", "star", "--query-number", "2",
            "--budget-gb", "1", "--max-candidates", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "indexes selected" in out
        assert "Per-query estimated cost" in out

    def test_recommend_compress_folds_literal_variants(self, tmp_path, capsys):
        """--compress folds a trace file's literal variants into one template.

        The summary reports the fold and the per-query table shows the
        fingerprint-named representative, not the raw statements.
        """
        sql = "SELECT fact.fact_m1 FROM fact WHERE fact.fact_m1 > {}"
        trace = tmp_path / "trace.sql"
        trace.write_text(f"{sql.format('10.0')};\n{sql.format('20.0')}\n")
        code = main([
            "recommend", "--catalog", "star", "--compress",
            "--sql-file", str(trace),
            "--budget-gb", "1", "--max-candidates", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload compression  : 2 statements -> 1 templates" in out
        assert "(2.0x, approximate)" in out
        assert "tpl_" in out

    def test_recommend_compress_is_a_no_op_on_unique_templates(self, capsys):
        code = main([
            "recommend", "--catalog", "star", "--query-number", "2",
            "--compress", "--budget-gb", "1", "--max-candidates", "20",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload compression  : 1 statements -> 1 templates" in out
        assert "(1.0x, exact)" in out


class TestCache:
    def test_cache_stats_pinum(self, capsys):
        code = main(["cache", "--catalog", "star", "--query-number", "2", "--builder", "pinum"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Plan-cache construction (pinum)" in out

    def test_cache_save_round_trip(self, tmp_path, capsys):
        prefix = tmp_path / "demo"
        code = main([
            "cache", "--catalog", "star", "--query-number", "1",
            "--builder", "pinum", "--save", str(prefix),
        ])
        assert code == 0
        saved = list(tmp_path.glob("demo.Q1.json"))
        assert len(saved) == 1
        payload = json.loads(saved[0].read_text())
        assert payload["query_name"] == "Q1"

    def test_cache_workload_cold_and_warm(self, tmp_path, capsys):
        cache_dir = tmp_path / "store"
        argv = ["cache-workload", "--catalog", "tpch", "--cache-dir", str(cache_dir)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Workload cache construction (pinum, jobs=1)" in cold
        assert "2 built, 0 from store" in cold
        # The second run must answer entirely from the persistent store.
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "0 built, 2 from store" in warm
        assert "optimizer calls : 0" in warm

    def test_cache_workload_store_is_shared_with_recommend(self, tmp_path, capsys):
        """With one --cache-dir and the shared default --max-candidates, the
        caches built by cache-workload are reused verbatim by recommend."""
        cache_dir = str(tmp_path / "store")
        assert main(["cache-workload", "--catalog", "tpch", "--cache-dir", cache_dir]) == 0
        warmup = capsys.readouterr().out
        assert "2 built, 0 from store" in warmup
        assert main(["recommend", "--catalog", "tpch", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache preparation : 0 optimizer calls" in out
        assert "indexes selected" in out

    def test_sql_file_input(self, tmp_path, capsys):
        sql_file = tmp_path / "workload.sql"
        sql_file.write_text(
            "SELECT customer.c_custkey FROM customer, orders "
            "WHERE customer.c_custkey = orders.o_custkey ORDER BY customer.c_custkey;\n"
            "SELECT orders.o_totalprice FROM orders WHERE orders.o_totalprice < 1000"
        )
        code = main(["cache", "--catalog", "tpch", "--sql-file", str(sql_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "file_q1" in out and "file_q2" in out


class TestServe:
    def test_serve_answers_requests_over_stdin(self, capsys):
        stdin = io.StringIO(
            '{"id": 1, "op": "ping"}\n'
            '{"id": 2, "op": "workload"}\n'
            '{"id": 3, "op": "shutdown"}\n'
        )
        with mock.patch("sys.stdin", stdin):
            code = main(["serve", "--catalog", "tpch", "--max-candidates", "20"])
        assert code == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert len(lines) == 3
        responses = [json.loads(line) for line in lines]
        assert all(response["ok"] for response in responses)
        assert responses[1]["result"]["queries"]


class TestObservabilityCli:
    def test_metrics_prometheus_to_stdout(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_total counter" in out
        assert "# TYPE repro_whatif_seconds histogram" in out

    def test_metrics_json_format(self, capsys):
        assert main(["metrics", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "json"
        names = {family["name"] for family in payload["families"]}
        assert "repro_session_recommends_total" in names

    def test_recommend_trace_out_writes_ndjson(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.ndjson"
        code = main([
            "recommend", "--catalog", "tpch", "--max-candidates", "20",
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        assert f"spans appended to {trace_path}" in capsys.readouterr().out
        rows = [json.loads(line) for line in trace_path.read_text().splitlines()]
        names = {row["name"] for row in rows}
        assert {"session.recommend", "recommend.build", "recommend.select",
                "recommend.evaluate"} <= names
        roots = [row for row in rows if row["parent_id"] is None]
        assert [root["name"] for root in roots] == ["session.recommend"]
        assert len({row["trace_id"] for row in rows}) == 1

    def test_access_log_requires_tcp(self, capsys):
        code = main(["serve", "--catalog", "tpch", "--access-log"])
        assert code == 2
        assert "--access-log requires the --tcp transport" in capsys.readouterr().err

    def test_trace_out_and_access_log_parse(self):
        args = build_parser().parse_args(
            ["watch", "--follow", "feed.ndjson", "--trace-out", "spans.ndjson"]
        )
        assert args.trace_out == "spans.ndjson"
        args = build_parser().parse_args(
            ["serve", "--tcp", "127.0.0.1:0", "--access-log"]
        )
        assert args.access_log is True
        assert build_parser().parse_args(["recommend"]).trace_out is None
