"""Tests for the persistent, versioned cache store."""

import dataclasses
import json

import pytest

from repro.advisor import CandidateGenerator
from repro.catalog import TableStatistics
from repro.inum import CacheStore, InumCostModel
from repro.optimizer import Optimizer
from repro.pinum import PinumCacheBuilder, PinumCostModel
from repro.util.fingerprint import catalog_fingerprint

from conftest import build_small_catalog


@pytest.fixture
def candidates(small_catalog, join_query):
    return CandidateGenerator(small_catalog).for_query(join_query)


@pytest.fixture
def built_cache(small_catalog, join_query, candidates):
    return PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)


class TestRoundTrip:
    def test_save_load_identical_cache(self, tmp_path, small_catalog, join_query,
                                       candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        path = store.save(join_query, built_cache, "pinum", candidates)
        assert path.is_file()
        loaded = store.load(join_query, "pinum", candidates)
        assert loaded is not None
        assert loaded.entry_count == built_cache.entry_count
        assert len(loaded.access_costs) == len(built_cache.access_costs)
        assert loaded.build_stats.optimizer_calls_total == (
            built_cache.build_stats.optimizer_calls_total
        )
        original, reloaded = PinumCostModel(built_cache), PinumCostModel(loaded)
        for index in candidates:
            assert reloaded.estimate_with_indexes([index]) == pytest.approx(
                original.estimate_with_indexes([index])
            )
        assert store.statistics.hits == 1
        assert store.statistics.saves == 1

    def test_loaded_cache_estimates_like_inum_model_too(self, tmp_path, small_catalog,
                                                        join_query, candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        store.save(join_query, built_cache, "pinum", candidates)
        loaded = store.load(join_query, "pinum", candidates)
        model = InumCostModel(loaded)
        assert model.estimate_with_indexes([]) > 0

    def test_same_sql_under_other_name_loads(self, tmp_path, small_catalog, join_query,
                                             candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        store.save(join_query, built_cache, "pinum", candidates)
        renamed = dataclasses.replace(join_query, name="another_name")
        loaded = store.load(renamed, "pinum", candidates)
        assert loaded is not None
        assert loaded.query.name == "another_name"

    def test_stored_count_and_clear(self, tmp_path, small_catalog, join_query,
                                    candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        assert store.stored_count() == 0
        store.save(join_query, built_cache, "pinum", candidates)
        assert store.stored_count() == 1
        assert store.clear() == 1
        assert store.load(join_query, "pinum", candidates) is None


class TestInvalidation:
    def test_missing_cache_is_a_miss(self, tmp_path, small_catalog, join_query):
        store = CacheStore(tmp_path, small_catalog)
        assert store.load(join_query) is None
        assert store.statistics.misses == 1

    def test_other_builder_not_reused(self, tmp_path, small_catalog, join_query,
                                      candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        store.save(join_query, built_cache, "pinum", candidates)
        assert store.load(join_query, "inum", candidates) is None

    def test_other_candidate_set_is_stale(self, tmp_path, small_catalog, join_query,
                                          candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        store.save(join_query, built_cache, "pinum", candidates)
        assert store.load(join_query, "pinum", candidates[:-1]) is None
        assert store.statistics.stale_rejections == 1

    def test_statistics_change_invalidates(self, tmp_path, small_catalog, join_query,
                                           candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        store.save(join_query, built_cache, "pinum", candidates)

        changed = build_small_catalog()
        sales = changed.table("sales")
        changed.set_statistics("sales", TableStatistics.uniform(sales, 750_000))
        assert catalog_fingerprint(changed) != catalog_fingerprint(small_catalog)

        stale_store = CacheStore(tmp_path, changed)
        assert stale_store.load(join_query, "pinum", candidates) is None
        # The original catalog's store still serves its cache.
        assert store.load(join_query, "pinum", candidates) is not None

    def test_corrupt_file_is_a_miss(self, tmp_path, small_catalog, join_query,
                                    candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        path = store.save(join_query, built_cache, "pinum", candidates)
        path.write_text("{ not json")
        assert store.load(join_query, "pinum", candidates) is None

    def test_future_store_version_rejected(self, tmp_path, small_catalog, join_query,
                                           candidates, built_cache):
        store = CacheStore(tmp_path, small_catalog)
        path = store.save(join_query, built_cache, "pinum", candidates)
        envelope = json.loads(path.read_text())
        envelope["store_format_version"] = 999
        path.write_text(json.dumps(envelope))
        assert store.load(join_query, "pinum", candidates) is None
        assert store.statistics.stale_rejections == 1
