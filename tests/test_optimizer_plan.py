"""Tests for plan nodes, leaf slots and the INUM cost decomposition."""

import pytest

from repro.catalog.index import Index
from repro.optimizer.plan import (
    AccessPath,
    AggregateNode,
    HashJoinNode,
    LeafSlot,
    MergeJoinNode,
    NestLoopJoinNode,
    PlanSummary,
    ScanNode,
    SortNode,
)
from repro.query.ast import ColumnRef, JoinPredicate
from repro.util.errors import PlanningError


def make_seq_path(table="sales", cost=100.0, rows=1000.0):
    return AccessPath(table=table, method="seqscan", cost=cost, rows=rows, covering=True)


def make_index_path(table="customers", column="c_id", cost=40.0, rows=500.0, rescan=2.0):
    index = Index(table, [column])
    return AccessPath(
        table=table, method="indexscan", cost=cost, rows=rows, index=index,
        provided_order=column, rescan_cost=rescan, rows_per_probe=1.0,
    )


class TestAccessPath:
    def test_invalid_method_rejected(self):
        with pytest.raises(PlanningError):
            AccessPath(table="t", method="bitmap", cost=1, rows=1)

    def test_index_scan_requires_index(self):
        with pytest.raises(PlanningError):
            AccessPath(table="t", method="indexscan", cost=1, rows=1)

    def test_negative_cost_rejected(self):
        with pytest.raises(PlanningError):
            AccessPath(table="t", method="seqscan", cost=-1, rows=1)

    def test_supports_probe(self):
        assert make_index_path().supports_probe
        assert not make_seq_path().supports_probe

    def test_describe_mentions_method(self):
        assert "SeqScan" in make_seq_path().describe()
        assert "IndexScan" in make_index_path().describe()


class TestScanNode:
    def test_scan_cost_and_order(self):
        node = ScanNode(make_index_path())
        assert node.total_cost == 40.0
        assert ColumnRef("customers", "c_id") in node.output_order

    def test_seq_scan_has_no_order(self):
        assert ScanNode(make_seq_path()).output_order == frozenset()

    def test_parameterized_scan_cost(self):
        node = ScanNode(make_index_path(rescan=2.0), multiplier=100.0, parameterized=True)
        assert node.total_cost == pytest.approx(200.0)
        slot = node.leaf_slots()[0]
        assert slot.parameterized
        assert slot.contribution == pytest.approx(200.0)

    def test_parameterized_requires_rescan_cost(self):
        with pytest.raises(PlanningError):
            ScanNode(make_seq_path(), multiplier=10, parameterized=True)

    def test_tables(self):
        assert ScanNode(make_seq_path()).tables == frozenset({"sales"})


class TestJoinNodes:
    def _join(self):
        return JoinPredicate(ColumnRef("sales", "s_customer"), ColumnRef("customers", "c_id"))

    def test_hash_join_structure(self):
        outer = ScanNode(make_seq_path())
        inner = ScanNode(make_index_path())
        node = HashJoinNode(outer, inner, self._join(), 500.0, 2000.0)
        assert node.tables == frozenset({"sales", "customers"})
        assert len(node.leaf_slots()) == 2
        assert not node.uses_nested_loop()

    def test_nested_loop_detected(self):
        outer = ScanNode(make_seq_path())
        inner = ScanNode(make_index_path(), multiplier=outer.rows, parameterized=True)
        node = NestLoopJoinNode(outer, inner, self._join(), 800.0, 2000.0)
        assert node.uses_nested_loop()

    def test_internal_cost_decomposition_exact(self):
        """total == internal + sum(leaf contributions) for every operator mix."""
        outer = ScanNode(make_seq_path(cost=100.0))
        inner = ScanNode(make_index_path(cost=40.0))
        join = HashJoinNode(outer, inner, self._join(), 500.0, 2000.0)
        assert join.internal_cost() + join.access_cost() == pytest.approx(join.total_cost)
        assert join.access_cost() == pytest.approx(140.0)

    def test_internal_cost_with_parameterized_inner(self):
        outer = ScanNode(make_seq_path(cost=100.0, rows=50.0))
        inner = ScanNode(make_index_path(rescan=2.0), multiplier=50.0, parameterized=True)
        node = NestLoopJoinNode(outer, inner, self._join(), 230.0, 500.0)
        assert node.access_cost() == pytest.approx(100.0 + 50.0 * 2.0)
        assert node.internal_cost() == pytest.approx(30.0)

    def test_required_ioc_uses_leaf_orders(self):
        outer = ScanNode(make_seq_path())
        inner = ScanNode(make_index_path())
        node = MergeJoinNode(outer, inner, self._join(), 400.0, 1000.0)
        ioc = node.required_ioc()
        assert ioc.order_for("customers") == "c_id"
        assert ioc.order_for("sales") is None

    def test_indexes_used(self):
        outer = ScanNode(make_seq_path())
        inner = ScanNode(make_index_path())
        node = HashJoinNode(outer, inner, self._join(), 400.0, 1000.0)
        assert [i.table for i in node.indexes_used()] == ["customers"]


class TestOtherNodes:
    def test_sort_node_sets_output_order(self):
        child = ScanNode(make_seq_path())
        node = SortNode(child, (ColumnRef("sales", "s_amount"),), 300.0)
        assert ColumnRef("sales", "s_amount") in node.output_order
        assert node.rows == child.rows

    def test_aggregate_node_strategies(self):
        child = ScanNode(make_seq_path())
        hashed = AggregateNode(child, "hashed", (ColumnRef("sales", "s_customer"),), 200.0, 10.0)
        assert hashed.output_order == frozenset()
        with pytest.raises(PlanningError):
            AggregateNode(child, "magic", (), 200.0, 10.0)

    def test_explain_contains_all_nodes(self):
        child = ScanNode(make_seq_path())
        node = SortNode(child, (ColumnRef("sales", "s_amount"),), 300.0)
        text = node.explain()
        assert "Sort" in text and "SeqScan" in text

    def test_negative_cost_rejected(self):
        with pytest.raises(PlanningError):
            SortNode(ScanNode(make_seq_path()), (), -1.0)


class TestLeafSlot:
    def test_parameterized_slot_without_rescan_cost_rejected(self):
        slot = LeafSlot("sales", make_seq_path(), multiplier=10, parameterized=True)
        with pytest.raises(PlanningError):
            _ = slot.contribution


class TestPlanSummary:
    def test_identical_structure_same_key(self):
        join = JoinPredicate(ColumnRef("sales", "s_customer"), ColumnRef("customers", "c_id"))
        plan_a = HashJoinNode(ScanNode(make_seq_path()), ScanNode(make_index_path()), join, 500, 100)
        plan_b = HashJoinNode(ScanNode(make_seq_path(cost=999)), ScanNode(make_index_path(cost=1)), join, 123, 100)
        assert PlanSummary.of(plan_a).structural_key() == PlanSummary.of(plan_b).structural_key()

    def test_different_structure_different_key(self):
        join = JoinPredicate(ColumnRef("sales", "s_customer"), ColumnRef("customers", "c_id"))
        hash_plan = HashJoinNode(ScanNode(make_seq_path()), ScanNode(make_index_path()), join, 500, 100)
        merge_plan = MergeJoinNode(ScanNode(make_seq_path()), ScanNode(make_index_path()), join, 500, 100)
        assert PlanSummary.of(hash_plan).structural_key() != PlanSummary.of(merge_plan).structural_key()
