"""Tests for schema objects: columns, foreign keys, tables."""

import pytest

from repro.catalog.schema import Column, ColumnType, ForeignKey, Table, validate_foreign_keys
from repro.util.errors import CatalogError


class TestColumn:
    def test_default_width_from_type(self):
        assert Column("a", ColumnType.INTEGER).storage_width == 4
        assert Column("b", ColumnType.BIGINT).storage_width == 8

    def test_width_override(self):
        assert Column("name", ColumnType.TEXT, width=25).storage_width == 25

    def test_alignment_from_type(self):
        assert Column("a", ColumnType.BIGINT).alignment == 8
        assert Column("a", ColumnType.INTEGER).alignment == 4

    def test_empty_name_rejected(self):
        with pytest.raises(CatalogError):
            Column("")

    def test_invalid_width_rejected(self):
        with pytest.raises(CatalogError):
            Column("a", ColumnType.TEXT, width=0)


class TestForeignKey:
    def test_requires_all_fields(self):
        with pytest.raises(CatalogError):
            ForeignKey("", "t", "c")
        with pytest.raises(CatalogError):
            ForeignKey("c", "", "c")


class TestTable:
    def test_basic_construction(self):
        table = Table("t", [Column("a"), Column("b")], primary_key="a")
        assert table.column_names == ["a", "b"]
        assert table.primary_key == "a"

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a"), Column("a")])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a")], primary_key="missing")

    def test_no_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [])

    def test_foreign_key_on_unknown_column_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("a")], foreign_keys=[ForeignKey("missing", "other", "id")])

    def test_column_lookup(self):
        table = Table("t", [Column("a"), Column("b")])
        assert table.column("a").name == "a"
        assert table.has_column("b")
        assert not table.has_column("z")
        with pytest.raises(CatalogError):
            table.column("z")

    def test_column_widths_all_and_subset(self):
        table = Table("t", [Column("a", ColumnType.INTEGER), Column("b", ColumnType.BIGINT)])
        assert table.column_widths() == [(4, 4), (8, 8)]
        assert table.column_widths(["b"]) == [(8, 8)]

    def test_foreign_key_lookup(self):
        fk = ForeignKey("a", "parent", "id")
        table = Table("t", [Column("a")], foreign_keys=[fk])
        assert table.foreign_key_for("a") == fk
        assert table.foreign_key_for("nope") is None


class TestValidateForeignKeys:
    def test_valid_schema(self):
        parent = Table("parent", [Column("id")], primary_key="id")
        child = Table("child", [Column("pid")], foreign_keys=[ForeignKey("pid", "parent", "id")])
        result = validate_foreign_keys({"parent": parent, "child": child})
        assert result.ok

    def test_missing_table_detected(self):
        child = Table("child", [Column("pid")], foreign_keys=[ForeignKey("pid", "ghost", "id")])
        result = validate_foreign_keys({"child": child})
        assert not result.ok
        assert result.missing_tables

    def test_missing_column_detected(self):
        parent = Table("parent", [Column("id")])
        child = Table("child", [Column("pid")], foreign_keys=[ForeignKey("pid", "parent", "zz")])
        result = validate_foreign_keys({"parent": parent, "child": child})
        assert not result.ok
        assert result.missing_columns
