"""Tests for the process-wide metrics registry and its export surfaces."""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs.export import render_prometheus, snapshot
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricError,
    MetricsRegistry,
    get_registry,
)

try:
    import numpy
except ImportError:  # pragma: no cover - the no-numpy CI leg
    numpy = None

_settings = settings(
    max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None
)


class TestRegistry:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_total", "a counter")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4.0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("test_total")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("test_gauge")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0

    def test_labels_fan_out_into_independent_children(self):
        counter = MetricsRegistry().counter("test_total", labelnames=("op",))
        counter.labels(op="a").inc()
        counter.labels(op="a").inc()
        counter.labels(op="b").inc()
        assert counter.labels("a").value == 2.0
        assert counter.labels("b").value == 1.0

    def test_labeled_family_rejects_bare_updates(self):
        counter = MetricsRegistry().counter("test_total", labelnames=("op",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_reregistration_same_shape_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("test_total", labelnames=("op",))
        second = registry.counter("test_total", labelnames=("op",))
        assert first is second

    def test_reregistration_conflicting_shape_raises(self):
        registry = MetricsRegistry()
        registry.counter("test_total", labelnames=("op",))
        with pytest.raises(MetricError):
            registry.gauge("test_total")
        with pytest.raises(MetricError):
            registry.counter("test_total", labelnames=("other",))
        registry.histogram("test_seconds")
        with pytest.raises(MetricError):
            registry.histogram("test_seconds", buckets=(1.0, 2.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("0bad")
        with pytest.raises(MetricError):
            registry.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(MetricError):
            registry.counter("ok_total", labelnames=("dup", "dup"))

    def test_default_registry_is_process_wide(self):
        assert get_registry() is get_registry()

    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("test_total", labelnames=("op",))
        counter.labels(op="a").inc(7)
        registry.reset()
        assert counter.labels(op="a").value == 0.0
        assert registry.get("test_total") is counter


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = Histogram((1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.5, 10.0):
            histogram.observe(value)
        assert histogram.cumulative_buckets() == [
            (1.0, 1), (2.0, 3), (5.0, 3), (float("inf"), 4),
        ]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(13.5)

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram(DEFAULT_BUCKETS).quantile(0.5) == 0.0

    def test_quantile_range_checked(self):
        with pytest.raises(MetricError):
            Histogram(DEFAULT_BUCKETS).quantile(1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(MetricError):
            Histogram((1.0, 1.0))
        with pytest.raises(MetricError):
            Histogram(())

    def test_snapshot_carries_interpolated_quantiles(self):
        histogram = Histogram(DEFAULT_BUCKETS)
        for _ in range(100):
            histogram.observe(0.03)
        snap = histogram.snapshot()
        assert snap["count"] == 100
        # Every observation is in the (0.025, 0.05] bucket, so every
        # quantile interpolates inside it.
        for key in ("p50", "p90", "p99"):
            assert 0.025 <= snap[key] <= 0.05

    @pytest.mark.skipif(numpy is None, reason="needs numpy order statistics")
    @_settings
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
        q=st.sampled_from([0.5, 0.9, 0.99]),
    )
    def test_quantiles_within_one_bucket_of_order_statistic(self, values, q):
        """The estimate sits within one bucket of the rank-q observation.

        The histogram puts the q-quantile in the bucket holding the
        ``ceil(q * n)``-th smallest observation; numpy's *linear*
        ``percentile`` interpolates between samples and so can be far away
        when samples are sparse, but the order statistic at that rank (or
        its neighbour, for float-boundary ranks) must be within one bucket
        width of the estimate.
        """
        bounds = tuple(float(b) for b in range(1, 101))
        histogram = Histogram(bounds)
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        ordered = numpy.sort(numpy.asarray(values))
        rank = q * len(values)
        low = max(1, math.floor(rank))
        high = min(len(values), low + 1)
        nearby = (float(ordered[low - 1]), float(ordered[high - 1]))
        assert any(abs(estimate - target) <= 1.0 + 1e-9 for target in nearby)

    @pytest.mark.skipif(numpy is None, reason="needs numpy percentiles")
    def test_quantiles_track_numpy_percentiles_on_dense_data(self):
        """On a dense sample the estimate matches numpy's linear percentile
        to within one bucket width (rank conventions converge)."""
        bounds = tuple(float(b) for b in range(1, 101))
        histogram = Histogram(bounds)
        values = numpy.random.RandomState(7).uniform(0.0, 100.0, size=5_000)
        for value in values:
            histogram.observe(float(value))
        for q in (0.5, 0.9, 0.99):
            exact = float(numpy.percentile(values, q * 100.0))
            assert abs(histogram.quantile(q) - exact) <= 1.0 + 1e-9


class TestConcurrency:
    def test_eight_thread_hammer_loses_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer_total", labelnames=("worker",))
        gauge = registry.gauge("hammer_inflight")
        histogram = registry.histogram("hammer_seconds", buckets=(0.5, 1.0))
        iterations = 5_000
        threads = 8

        def hammer(worker: int) -> None:
            child = counter.labels(worker=str(worker % 2))
            for index in range(iterations):
                child.inc()
                gauge.inc()
                gauge.dec()
                histogram.observe(0.25 if index % 2 else 0.75)

        pool = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        # Every increment survived: the two label children split the total
        # evenly, the gauge returned to zero, the histogram saw every
        # observation in the right bucket.
        assert counter.labels(worker="0").value == threads / 2 * iterations
        assert counter.labels(worker="1").value == threads / 2 * iterations
        assert gauge.value == 0.0
        observed = histogram.snapshot()["series"][0]
        assert observed["count"] == threads * iterations
        assert observed["buckets"][-1][1] == threads * iterations


class TestTimed:
    def test_plain_stopwatch(self):
        from repro.util.timing import timed

        with timed() as timer:
            inside = timer.elapsed()
        assert inside >= 0.0
        assert timer.seconds >= inside

    def test_observes_labeled_histogram_on_exit(self):
        from repro.util.timing import timed

        histogram = MetricsRegistry().histogram(
            "timed_seconds", labelnames=("phase",)
        )
        with timed(histogram, phase="build"):
            pass
        assert histogram.labels(phase="build").count == 1
        assert histogram.labels(phase="other").count == 0

    def test_observes_even_when_the_block_raises(self):
        from repro.util.timing import timed

        histogram = MetricsRegistry().histogram("timed_seconds")
        with pytest.raises(RuntimeError):
            with timed(histogram) as timer:
                raise RuntimeError("boom")
        assert timer.seconds > 0.0
        assert histogram.snapshot()["series"][0]["count"] == 1


class TestExport:
    def _example_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter(
            "demo_requests_total", "Requests by op.", labelnames=("op",)
        )
        requests.labels(op="recommend").inc(2)
        requests.labels(op="ping").inc()
        inflight = registry.gauge("demo_inflight", "In-flight requests.")
        inflight.set(1)
        seconds = registry.histogram(
            "demo_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        seconds.observe(0.05)
        seconds.observe(0.5)
        seconds.observe(5.0)
        return registry

    def test_golden_prometheus_exposition(self):
        """The exact text exposition a scraper sees, end to end."""
        assert render_prometheus(self._example_registry()) == (
            "# HELP demo_requests_total Requests by op.\n"
            "# TYPE demo_requests_total counter\n"
            'demo_requests_total{op="ping"} 1\n'
            'demo_requests_total{op="recommend"} 2\n'
            "# HELP demo_inflight In-flight requests.\n"
            "# TYPE demo_inflight gauge\n"
            "demo_inflight 1\n"
            "# HELP demo_seconds Latency.\n"
            "# TYPE demo_seconds histogram\n"
            'demo_seconds_bucket{le="0.1"} 1\n'
            'demo_seconds_bucket{le="1"} 2\n'
            'demo_seconds_bucket{le="+Inf"} 3\n'
            "demo_seconds_sum 5.55\n"
            "demo_seconds_count 3\n"
        )

    def test_empty_labeled_family_still_renders_headers(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "Nothing yet.", labelnames=("op",))
        assert render_prometheus(registry) == (
            "# HELP demo_total Nothing yet.\n"
            "# TYPE demo_total counter\n"
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_total", labelnames=("op",))
        counter.labels(op='a"b\\c\nd').inc()
        assert 'demo_total{op="a\\"b\\\\c\\nd"} 1' in render_prometheus(registry)

    def test_snapshot_shape(self):
        snap = snapshot(self._example_registry())
        by_name = {family["name"]: family for family in snap["families"]}
        assert by_name["demo_requests_total"]["type"] == "counter"
        series = by_name["demo_requests_total"]["series"]
        assert {"labels": {"op": "ping"}, "value": 1.0} in series
        histogram = by_name["demo_seconds"]["series"][0]
        assert histogram["count"] == 3
        assert histogram["buckets"][-1] == ["+Inf", 3]
        for key in ("p50", "p90", "p99"):
            assert key in histogram

    def test_instrument_catalog_registers_every_family_group(self):
        """Importing the catalog makes every subsystem's families visible."""
        import repro.obs.instruments  # noqa: F401

        text = render_prometheus()
        for family in (
            "repro_whatif_calls_total",
            "repro_build_seconds",
            "repro_selection_seconds",
            "repro_session_recommends_total",
            "repro_tier_lookups_total",
            "repro_serve_requests_total",
            "repro_online_polls_total",
        ):
            assert f"# TYPE {family}" in text
