"""Tests for the ILP formulation layer: BIP compilation over INUM caches.

The formulation's arithmetic must agree with the cost models the greedy
selectors use -- for any integral selection, ``formulation.cost(bits)``
equals the weighted workload cost the advisor would report for the same
index set.  The benefit caps backing the solver's relaxation must be
*sound*: no candidate set may ever gain more than ``slack + sum(caps)``.
"""

from __future__ import annotations

import random

import pytest

from repro.advisor import CandidateGenerator
from repro.advisor.benefit import CacheBackedWorkloadCostModel, OptimizerWorkloadCostModel
from repro.advisor.ilp.formulation import build_formulation, iterate_bits
from repro.optimizer import Optimizer
from repro.util.errors import AdvisorError
from repro.util.units import gigabytes

BUDGET = gigabytes(5)


def _star_model(star_workload, query_count=5, candidate_count=25, weights=None,
                statements=None):
    catalog = star_workload.catalog()
    queries = statements if statements is not None else star_workload.queries()[:query_count]
    reads = [q for q in queries if not q.is_dml]
    candidates = CandidateGenerator(catalog).for_workload(reads)[:candidate_count]
    model = CacheBackedWorkloadCostModel(
        Optimizer(catalog), queries, candidates, weights=weights
    )
    return catalog, queries, candidates, model


class TestFormulationCost:
    def test_matches_cost_model_on_random_selections(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload)
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        rng = random.Random(17)
        for _ in range(8):
            picks = rng.sample(candidates, rng.randint(0, 8))
            bits = formulation.selection_of(picks)
            expected = model.weighted_total(model.per_query_costs(picks))
            assert formulation.cost(bits) == pytest.approx(expected, rel=1e-9)

    def test_matches_weighted_mixed_workload(self, star_workload):
        mixed = star_workload.mixed(read_fraction=0.6)
        catalog = star_workload.catalog()
        _, _, candidates, model = _star_model(
            star_workload, statements=mixed.statements, weights=mixed.weights,
            candidate_count=20,
        )
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        rng = random.Random(5)
        for _ in range(6):
            picks = rng.sample(candidates, rng.randint(0, 6))
            bits = formulation.selection_of(picks)
            expected = model.weighted_total(model.per_query_costs(picks))
            assert formulation.cost(bits) == pytest.approx(expected, rel=1e-9)

    def test_statement_costs_are_per_execution(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload, query_count=3)
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        per_statement = formulation.statement_costs(0)
        baseline = model.per_query_costs([])
        for query in queries:
            assert per_statement[query.name] == pytest.approx(
                baseline[query.name], rel=1e-9
            )

    def test_duplicate_candidates_collapse(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload, query_count=3)
        doubled = list(candidates) + list(candidates)
        formulation = build_formulation(model, catalog, doubled, BUDGET)
        assert formulation.candidate_count == len(candidates)
        bits = formulation.selection_of(candidates[:3])
        assert [index.key for index in formulation.selected(bits)] == [
            index.key for index in candidates[:3]
        ]

    def test_rejects_cache_free_cost_model(self, star_workload):
        catalog = star_workload.catalog()
        queries = star_workload.queries()[:2]
        model = OptimizerWorkloadCostModel(Optimizer(catalog), queries)
        with pytest.raises(AdvisorError, match="cache-backed cost model"):
            build_formulation(model, catalog, [], BUDGET)

    def test_rejects_non_positive_budget(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload, query_count=2)
        with pytest.raises(AdvisorError, match="space_budget_bytes"):
            build_formulation(model, catalog, candidates, 0)


class TestBipAccounting:
    def test_statistics_describe_the_explicit_program(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload)
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        stats = formulation.statistics
        assert stats.statements == len(queries)
        assert stats.candidates == len(candidates)
        assert stats.index_variables == len(candidates)
        # One y per cached plan entry of every statement.
        assert stats.plan_variables == sum(
            len(program.entry_internal) for program in formulation.programs
        )
        # z variables exist and each contributes at least its class-served
        # row, so the constraint count dominates the statement count.
        assert stats.assignment_variables > stats.plan_variables
        assert stats.constraints > stats.statements
        assert stats.variables == (
            stats.index_variables + stats.plan_variables + stats.assignment_variables
        )

    def test_knapsack_helpers(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload, query_count=3)
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        bits = formulation.selection_of(candidates[:4])
        expected = sum(catalog.index_size_bytes(index) for index in candidates[:4])
        assert formulation.total_size(bits) == expected
        assert formulation.fits(0)


class TestCapSoundness:
    def test_benefit_never_exceeds_slack_plus_caps(self, star_workload):
        """The relaxation inequality behind every branch-and-bound prune."""
        catalog, queries, candidates, model = _star_model(
            star_workload, query_count=6, candidate_count=30
        )
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        rng = random.Random(23)
        positions = range(formulation.candidate_count)
        for _ in range(25):
            base = sum(1 << p for p in rng.sample(positions, rng.randint(0, 4)))
            extra = sum(
                1 << p
                for p in rng.sample(positions, rng.randint(1, 8))
                if not (base >> p) & 1
            )
            if not extra:
                continue
            for program in formulation.programs:
                base_mask = program.active_mask(base)
                all_mask = program.active_mask(base | extra)
                benefit = program.read_cost_for_mask(base_mask) - program.read_cost_for_mask(
                    all_mask
                )
                caps = program.caps(base_mask)
                slack = program.slack(base_mask, all_mask)
                cap_sum = sum(
                    caps[program.column_of_candidate[p]]
                    for p in iterate_bits(extra)
                    if p in program.column_of_candidate
                )
                assert benefit <= slack + cap_sum + 1e-6 * max(1.0, abs(benefit))

    def test_monotone_read_costs(self, star_workload):
        catalog, queries, candidates, model = _star_model(star_workload, query_count=4)
        formulation = build_formulation(model, catalog, candidates, BUDGET)
        rng = random.Random(7)
        for _ in range(10):
            small = formulation.selection_of(rng.sample(candidates, 3))
            large = small | formulation.selection_of(rng.sample(candidates, 5))
            for program in formulation.programs:
                assert (
                    program.read_cost_for_mask(program.active_mask(large))
                    <= program.read_cost_for_mask(program.active_mask(small)) + 1e-12
                )
