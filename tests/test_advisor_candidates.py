"""Tests for candidate index generation."""

from repro.advisor import CandidateGenerator


class TestPerQueryCandidates:
    def test_single_column_candidates_for_all_referenced_columns(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        single = {(c.table, c.columns) for c in candidates if len(c.columns) == 1}
        for table in join_query.tables:
            for column in join_query.columns_of(table):
                assert (table, (column,)) in single

    def test_covering_candidates_exist_per_interesting_order(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        sales_covering = [
            c for c in candidates
            if c.table == "sales" and set(join_query.columns_of("sales")) <= set(c.columns)
        ]
        assert sales_covering

    def test_candidates_are_hypothetical_and_valid(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        for candidate in candidates:
            assert candidate.hypothetical
            candidate.validate_against(small_catalog.table(candidate.table))

    def test_no_duplicates(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        assert len({c.key for c in candidates}) == len(candidates)

    def test_max_index_columns_respected(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog, max_index_columns=2).for_query(join_query)
        assert all(len(c.columns) <= 2 for c in candidates)


class TestWorkloadCandidates:
    def test_workload_union_deduplicated(self, small_catalog, join_query, simple_query):
        generator = CandidateGenerator(small_catalog)
        combined = generator.for_workload([join_query, simple_query])
        assert len({c.key for c in combined}) == len(combined)
        only_join = generator.for_query(join_query)
        assert len(combined) >= len(only_join)

    def test_candidates_per_table_grouping(self, small_catalog, join_query):
        grouped = CandidateGenerator(small_catalog).candidates_per_table([join_query])
        assert set(grouped) <= set(join_query.tables)
        for table, indexes in grouped.items():
            assert all(index.table == table for index in indexes)

    def test_star_workload_candidate_scale(self, star_workload):
        """The paper reports ~1093 candidates for the ten-query workload."""
        generator = CandidateGenerator(star_workload.catalog())
        candidates = generator.for_workload(star_workload.queries())
        assert 100 <= len(candidates) <= 3000
