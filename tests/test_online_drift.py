"""Property tests for the drift metrics and the hysteresis detector."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.online import DRIFT_METRICS, DriftDetector, jensen_shannon, total_variation
from repro.online.drift import resolve_metric
from repro.util.errors import AdvisorError

_settings = settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow],
                     deadline=None)

_weights = st.floats(min_value=1e-3, max_value=100.0, allow_nan=False,
                     allow_infinity=False)
_distributions = st.dictionaries(st.sampled_from("abcde"), _weights,
                                 min_size=1, max_size=5)
_alien_distributions = st.dictionaries(st.sampled_from("vwxyz"), _weights,
                                       min_size=1, max_size=5)

METRICS = sorted(DRIFT_METRICS)


def _normalize(weights):
    total = sum(weights.values())
    return {key: value / total for key, value in weights.items()}


def _mix(p, alien, epsilon):
    """(1 - epsilon) of ``p`` plus ``epsilon`` of ``alien`` (both normalized)."""
    p, alien = _normalize(p), _normalize(alien)
    mixed = {key: (1.0 - epsilon) * value for key, value in p.items()}
    for key, value in alien.items():
        mixed[key] = mixed.get(key, 0.0) + epsilon * value
    return mixed


class TestMetricProperties:
    @pytest.mark.parametrize("name", METRICS)
    @_settings
    @given(p=_distributions)
    def test_identical_distributions_have_zero_drift(self, name, p):
        assert DRIFT_METRICS[name](p, dict(p)) == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("name", METRICS)
    @_settings
    @given(p=_distributions, q=_distributions)
    def test_bounded_in_unit_interval(self, name, p, q):
        drift = DRIFT_METRICS[name](p, q)
        assert 0.0 <= drift <= 1.0

    @pytest.mark.parametrize("name", METRICS)
    @_settings
    @given(p=_distributions, q=_distributions)
    def test_symmetric(self, name, p, q):
        metric = DRIFT_METRICS[name]
        assert metric(p, q) == pytest.approx(metric(q, p), abs=1e-12)

    @pytest.mark.parametrize("name", METRICS)
    @_settings
    @given(p=_distributions, q=_alien_distributions)
    def test_disjoint_support_is_maximal(self, name, p, q):
        assert DRIFT_METRICS[name](p, q) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", METRICS)
    @_settings
    @given(p=_distributions, alien=_alien_distributions,
           low=st.floats(min_value=0.0, max_value=1.0),
           high=st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_under_alien_mixing(self, name, p, alien, low, high):
        low, high = min(low, high), max(low, high)
        metric = DRIFT_METRICS[name]
        drift_low = metric(p, _mix(p, alien, low))
        drift_high = metric(p, _mix(p, alien, high))
        assert drift_low <= drift_high + 1e-9

    @_settings
    @given(p=_distributions, alien=_alien_distributions,
           epsilon=st.floats(min_value=0.0, max_value=1.0))
    def test_total_variation_of_alien_mix_is_epsilon(self, p, alien, epsilon):
        # TV is exactly the mixed-in mass when the alien support is disjoint,
        # which is what makes its thresholds interpretable.
        assert total_variation(p, _mix(p, alien, epsilon)) == pytest.approx(
            epsilon, abs=1e-9
        )

    @pytest.mark.parametrize("name", METRICS)
    def test_empty_edge_cases(self, name):
        metric = DRIFT_METRICS[name]
        assert metric({}, {}) == 0.0
        assert metric({"a": 1.0}, {}) == 1.0
        assert metric({}, {"a": 1.0}) == 1.0

    def test_unnormalized_inputs_are_normalized(self):
        assert total_variation({"a": 2.0, "b": 2.0}, {"a": 200, "b": 200}) == 0.0
        assert jensen_shannon({"a": 5.0}, {"a": 0.01}) == 0.0

    def test_resolve_metric(self):
        assert resolve_metric("total_variation") is total_variation
        assert resolve_metric("jensen_shannon") is jensen_shannon
        with pytest.raises(AdvisorError, match="unknown drift metric"):
            resolve_metric("euclidean")


class TestDriftDetector:
    def test_fires_once_per_excursion(self):
        detector = DriftDetector(high_water=0.35, low_water=0.15)
        assert [detector.observe(d) for d in (0.5, 0.6, 0.7)] == [True, False, False]
        assert detector.fires == 1
        assert not detector.armed

    def test_band_oscillation_changes_nothing(self):
        detector = DriftDetector(high_water=0.35, low_water=0.15)
        assert detector.observe(0.5) is True
        # In-band values neither re-arm nor fire, in either state.
        for drift in (0.2, 0.34, 0.16, 0.3):
            assert detector.observe(drift) is False
        assert not detector.armed
        assert detector.rearms == 0

    def test_rearm_only_below_low_water(self):
        detector = DriftDetector(high_water=0.35, low_water=0.15)
        assert detector.observe(0.5) is True
        assert detector.observe(0.1) is False
        assert detector.armed
        assert detector.rearms == 1
        assert detector.observe(0.5) is True
        assert detector.fires == 2

    def test_thresholds_are_strict(self):
        detector = DriftDetector(high_water=0.35, low_water=0.15)
        assert detector.observe(0.35) is False  # == high does not fire
        assert detector.observe(0.36) is True
        assert detector.observe(0.15) is False  # == low does not re-arm
        assert not detector.armed

    def test_history_and_last_drift(self):
        detector = DriftDetector(high_water=0.5, low_water=0.2)
        for drift in (0.1, 0.6, 0.3):
            detector.observe(drift)
        assert detector.history == [0.1, 0.6, 0.3]
        assert detector.last_drift == 0.3

    @_settings
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=60))
    def test_consecutive_fires_require_a_rearm_between_them(self, sequence):
        detector = DriftDetector(high_water=0.35, low_water=0.15)
        fired_at = [i for i, drift in enumerate(sequence) if detector.observe(drift)]
        for first, second in zip(fired_at, fired_at[1:]):
            assert any(sequence[i] < 0.15 for i in range(first + 1, second)), (
                "two fires without an observation below the low-water mark"
            )
        assert detector.fires == len(fired_at)
