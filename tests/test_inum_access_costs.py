"""Tests for the access-cost table."""

import pytest

from repro.catalog.index import Index
from repro.inum.access_costs import AccessCostInfo, AccessCostTable
from repro.optimizer.plan import AccessPath
from repro.util.errors import PlanningError


def seq_path(table="t", cost=100.0):
    return AccessPath(table=table, method="seqscan", cost=cost, rows=1000, covering=True)


def index_path(table="t", column="a", cost=40.0, rescan=2.0):
    return AccessPath(
        table=table, method="indexscan", cost=cost, rows=1000,
        index=Index(table, [column]), provided_order=column, rescan_cost=rescan,
    )


class TestAccessCostInfo:
    def test_from_seq_path(self):
        info = AccessCostInfo.from_path(seq_path())
        assert info.index_key is None
        assert info.covers_order(None)
        assert not info.covers_order("a")

    def test_from_index_path(self):
        info = AccessCostInfo.from_path(index_path())
        assert info.index_key == ("t", ("a",))
        assert info.covers_order("a")
        assert info.covers_order(None)
        assert info.probe_cost == 2.0


class TestAccessCostTable:
    def test_heap_lookup(self):
        table = AccessCostTable()
        table.add_path(seq_path())
        assert table.has_heap("t")
        assert table.heap("t").full_cost == 100.0

    def test_missing_heap_raises(self):
        table = AccessCostTable()
        with pytest.raises(PlanningError):
            table.heap("t")

    def test_for_index(self):
        table = AccessCostTable()
        table.add_path(index_path())
        assert table.for_index(Index("t", ["a"])).full_cost == 40.0
        assert table.for_index(Index("t", ["zzz"])) is None

    def test_add_overwrites_same_key(self):
        table = AccessCostTable()
        table.add_path(index_path(cost=40.0))
        table.add_path(index_path(cost=10.0))
        assert len(table) == 1
        assert table.for_index(Index("t", ["a"])).full_cost == 10.0

    def test_entries_for_table(self):
        table = AccessCostTable()
        table.add_path(seq_path())
        table.add_path(index_path())
        table.add_path(seq_path(table="u"))
        assert len(table.entries_for_table("t")) == 2
        assert table.tables() == ["t", "u"]

    def test_best_access_prefers_cheapest_when_no_order_required(self):
        table = AccessCostTable()
        table.add_path(seq_path(cost=100.0))
        table.add_path(index_path(cost=10.0))
        best = table.best_access("t", Index("t", ["a"]), required_order=None)
        assert best.full_cost == 10.0

    def test_best_access_requires_covering_index_for_order(self):
        table = AccessCostTable()
        table.add_path(seq_path())
        table.add_path(index_path(column="a"))
        # Requiring order "a" with an index on "b" in the configuration fails.
        assert table.best_access("t", Index("t", ["b"]), required_order="a") is None
        # The heap cannot satisfy a required order either.
        assert table.best_access("t", None, required_order="a") is None
        # The right index satisfies it.
        assert table.best_access("t", Index("t", ["a"]), required_order="a") is not None

    def test_best_access_with_no_information(self):
        table = AccessCostTable()
        assert table.best_access("t", None, None) is None
