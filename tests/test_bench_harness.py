"""Tests for the benchmark harness helpers."""

import warnings

import pytest

from repro.bench.harness import (
    ExperimentTable,
    Timer,
    format_value,
    geometric_mean,
    relative_error,
    speedup_table,
)


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0
        assert timer.milliseconds == pytest.approx(timer.seconds * 1000)


class TestExperimentTable:
    def test_render_contains_headers_and_rows(self):
        table = ExperimentTable("Demo", ["query", "time"])
        table.add_row("Q1", 12.5)
        table.add_row("Q2", 3.25)
        text = table.render()
        assert "Demo" in text
        assert "query" in text and "time" in text
        assert "Q1" in text and "12.50" in text

    def test_row_arity_checked(self):
        table = ExperimentTable("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1,234,567"
        assert format_value(0.1234) == "0.1234"
        assert format_value("text") == "text"


class TestMetrics:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert relative_error(1, 0) == float("inf")

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_geometric_mean_warns_on_dropped_values(self):
        with pytest.warns(RuntimeWarning, match="2 non-positive"):
            result = geometric_mean([1.0, 0.0, -3.0, 100.0])
        assert result == pytest.approx(10.0)

    def test_geometric_mean_strict_raises(self):
        with pytest.raises(ValueError, match="non-positive"):
            geometric_mean([1.0, -1.0], strict=True)

    def test_geometric_mean_all_dropped_returns_zero(self):
        with pytest.warns(RuntimeWarning):
            assert geometric_mean([0.0, -2.0]) == 0.0

    def test_geometric_mean_positive_inputs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_speedup_table(self):
        speedups = speedup_table({"q1": 10.0, "q2": 4.0}, {"q1": 2.0, "q2": 0.0})
        assert speedups["q1"] == pytest.approx(5.0)
        assert speedups["q2"] == float("inf")
