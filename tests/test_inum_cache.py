"""Tests for the shared plan-cache data structure."""

import pytest

from repro.catalog.index import Index
from repro.inum.cache import CacheEntry, InumCache
from repro.optimizer import Optimizer
from repro.optimizer.interesting_orders import interesting_orders_by_table
from repro.optimizer.plan import AccessPath
from repro.util.errors import PlanningError


def entry_from_best_plan(optimizer, query, nestloop=False):
    orders = interesting_orders_by_table(query)
    plan = optimizer.optimize(query, enable_nestloop=nestloop).plan
    return CacheEntry.from_plan(plan, orders, source="test")


class TestCacheEntry:
    def test_from_plan_slots_cover_all_tables(self, optimizer, join_query):
        entry = entry_from_best_plan(optimizer, join_query)
        assert {slot.table for slot in entry.slots} == set(join_query.tables)
        assert entry.internal_cost >= 0

    def test_from_plan_normalizes_uninteresting_orders(self, small_catalog, join_query):
        """A covering index on a non-interesting column maps to the empty order."""
        small_catalog.add_index(Index("products", ["p_category", "p_id", "p_price"]))
        optimizer = Optimizer(small_catalog)
        entry = entry_from_best_plan(optimizer, join_query)
        # p_category is a filter column, not an interesting order, so the
        # cached slot must not require it.
        assert entry.ioc.order_for("products") is None

    def test_nestloop_flag_recorded(self, small_catalog, join_query):
        small_catalog.add_index(Index("customers", ["c_id"]))
        small_catalog.add_index(Index("products", ["p_id"]))
        optimizer = Optimizer(small_catalog)
        entry = entry_from_best_plan(optimizer, join_query, nestloop=True)
        assert entry.uses_nestloop == entry.plan.uses_nested_loop()


class TestInumCache:
    def test_add_entry_deduplicates_by_ioc_and_nestloop(self, optimizer, join_query):
        cache = InumCache(join_query)
        entry = entry_from_best_plan(optimizer, join_query)
        cache.add_entry(entry)
        cache.add_entry(entry)
        assert cache.entry_count == 1
        assert cache.combination_count == 1

    def test_add_entry_keeps_cheaper_duplicate(self, optimizer, join_query):
        cache = InumCache(join_query)
        entry = entry_from_best_plan(optimizer, join_query)
        cheaper = CacheEntry(
            ioc=entry.ioc,
            internal_cost=entry.internal_cost / 2,
            slots=entry.slots,
            uses_nestloop=entry.uses_nestloop,
            source="test",
            plan=entry.plan,
            summary=entry.summary,
        )
        cache.add_entry(entry)
        cache.add_entry(cheaper)
        assert cache.entry_count == 1
        assert cache.entries[0].internal_cost == cheaper.internal_cost

    def test_nestloop_variant_coexists(self, small_catalog, join_query):
        small_catalog.add_index(Index("customers", ["c_id"]))
        small_catalog.add_index(Index("products", ["p_id"]))
        optimizer = Optimizer(small_catalog)
        cache = InumCache(join_query)
        plain = entry_from_best_plan(optimizer, join_query, nestloop=False)
        nlj = entry_from_best_plan(optimizer, join_query, nestloop=True)
        cache.add_entry(plain)
        cache.add_entry(nlj)
        if plain.ioc == nlj.ioc and nlj.uses_nestloop:
            assert cache.entry_count == 2
            # The canonical per-IOC entry prefers the nested-loop-free plan.
            assert not cache.entry_for(plain.ioc).uses_nestloop

    def test_validate_requires_entries_and_heap_costs(self, optimizer, join_query):
        cache = InumCache(join_query)
        with pytest.raises(PlanningError):
            cache.validate()
        cache.add_entry(entry_from_best_plan(optimizer, join_query))
        with pytest.raises(PlanningError):
            cache.validate()  # heap access costs still missing
        for table in join_query.tables:
            cache.access_costs.add_path(
                AccessPath(table=table, method="seqscan", cost=10.0, rows=10.0, covering=True)
            )
        cache.validate()

    def test_unique_plan_count(self, optimizer, join_query):
        cache = InumCache(join_query)
        cache.add_entry(entry_from_best_plan(optimizer, join_query))
        assert cache.unique_plan_count() == 1

    def test_build_stats_totals(self, join_query):
        cache = InumCache(join_query)
        cache.build_stats.optimizer_calls_plans = 10
        cache.build_stats.optimizer_calls_access_costs = 5
        cache.build_stats.seconds_plans = 1.0
        cache.build_stats.seconds_access_costs = 0.5
        assert cache.build_stats.optimizer_calls_total == 15
        assert cache.build_stats.seconds_total == pytest.approx(1.5)
