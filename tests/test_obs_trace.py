"""Tests for span tracing: nesting, propagation, adoption, NDJSON export."""

from __future__ import annotations

import contextvars
import functools
import io
import json
import threading

from repro.advisor import CandidateGenerator
from repro.inum import WorkloadBuilderOptions, WorkloadCacheBuilder
from repro.obs import NULL_SPAN, Span, Tracer, write_spans_ndjson
from repro.obs.trace import get_tracer
from repro.workloads import builtin_catalog_factory
from repro.workloads.tpch_like import (
    build_tpch_like_catalog,
    tpch_q5_like_query,
    tpch_small_join_query,
)


class TestOptIn:
    def test_untraced_span_is_the_shared_null_context(self):
        tracer = Tracer()
        with tracer.span("anything") as span:
            assert span is NULL_SPAN
            assert not tracer.active
        assert tracer.current is None
        assert tracer.current_trace_id() == ""

    def test_null_span_swallows_everything(self):
        NULL_SPAN.set(key="value")
        NULL_SPAN.add("count")
        assert NULL_SPAN.to_dict() == {}
        assert NULL_SPAN.flatten() == []
        assert NULL_SPAN.attributes == {}

    def test_tracer_add_is_a_noop_untraced(self):
        tracer = Tracer()
        tracer.add("memo_hits")  # must not raise, must not allocate a trace
        assert not tracer.active

    def test_root_starts_a_trace(self):
        tracer = Tracer()
        with tracer.span("request", root=True) as span:
            assert tracer.active
            assert tracer.current is span
            assert tracer.current_trace_id() == span.trace_id
        assert not tracer.active


class TestNesting:
    def test_children_nest_and_carry_the_trace_id(self):
        tracer = Tracer()
        with tracer.span("root", root=True) as root:
            with tracer.span("child", op="x") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert [span.name for span in root.children] == ["child"]
        assert child.children[0] is grandchild
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert child.attributes == {"op": "x"}
        assert root.duration_seconds >= child.duration_seconds >= 0.0

    def test_span_counters_accumulate(self):
        tracer = Tracer()
        with tracer.span("root", root=True) as root:
            tracer.add("hits")
            tracer.add("hits", 2)
        assert root.attributes["hits"] == 3

    def test_exception_marks_the_span_and_propagates(self):
        tracer = Tracer()
        try:
            with tracer.span("root", root=True) as root:
                raise ValueError("boom")
        except ValueError:
            pass
        assert root.attributes["error"] == "ValueError"
        assert not tracer.active

    def test_sinks_see_finished_roots_only(self):
        tracer = Tracer()
        seen = []
        tracer.add_sink(seen.append)
        with tracer.span("root", root=True):
            with tracer.span("child"):
                pass
            assert seen == []  # nothing emitted until the root closes
        assert [span.name for span in seen] == ["root"]
        tracer.remove_sink(seen.append)
        with tracer.span("again", root=True):
            pass
        assert len(seen) == 1


class TestSerialization:
    def _build_tree(self) -> Span:
        tracer = Tracer()
        with tracer.span("root", root=True, kind="test") as root:
            with tracer.span("left"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("right", n=2):
                pass
        return root

    def test_to_dict_from_dict_round_trip(self):
        root = self._build_tree()
        rebuilt = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert rebuilt.to_dict() == root.to_dict()

    def test_flatten_links_children_by_parent_id(self):
        root = self._build_tree()
        rows = root.flatten()
        assert [row["name"] for row in rows] == ["root", "left", "leaf", "right"]
        by_id = {row["span_id"]: row for row in rows}
        for row in rows:
            assert "children" not in row
            assert row["trace_id"] == root.trace_id
            if row["parent_id"] is not None:
                assert row["parent_id"] in by_id

    def test_write_spans_ndjson(self):
        root = self._build_tree()
        stream = io.StringIO()
        assert write_spans_ndjson(root, stream) == 4
        lines = stream.getvalue().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[0])["name"] == "root"


class TestThreadPropagation:
    def test_copy_context_carries_the_span_across_threads(self):
        """The serve executor idiom: copy_context().run on the worker."""
        tracer = Tracer()

        def work() -> None:
            with tracer.span("on_worker"):
                pass

        with tracer.span("request", root=True) as root:
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(work,))
            thread.start()
            thread.join()
        assert [span.name for span in root.children] == ["on_worker"]

    def test_bare_thread_does_not_inherit_the_span(self):
        tracer = Tracer()
        recorded = []

        def work() -> None:
            recorded.append(tracer.active)

        with tracer.span("request", root=True):
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert recorded == [False]


class TestAdoption:
    def test_adopt_reparents_and_restamps_recursively(self):
        # The worker side: its own tracer, its own trace id, serialized
        # into the result payload exactly as the process pool ships it.
        worker = Tracer()
        with worker.span("worker_root", root=True, query="q2") as worker_root:
            with worker.span("inner"):
                pass
        payload = worker_root.to_dict()

        parent_tracer = Tracer()
        with parent_tracer.span("parent", root=True) as parent:
            adopted = parent_tracer.adopt(json.loads(json.dumps(payload)))
        assert adopted is parent.children[-1]
        assert adopted.parent_id == parent.span_id
        assert adopted.trace_id == parent.trace_id
        assert adopted.children[0].trace_id == parent.trace_id
        assert adopted.attributes == {"query": "q2"}

    def test_adopt_without_active_span_or_payload_is_none(self):
        tracer = Tracer()
        assert tracer.adopt({"name": "orphan"}) is None  # untraced caller
        with tracer.span("root", root=True):
            assert tracer.adopt(None) is None
            assert tracer.adopt({}) is None


class TestProcessPoolReparenting:
    def test_parallel_build_ships_worker_spans_home(self):
        """A jobs=2 build under a trace adopts one worker subtree per query,
        re-stamped onto the caller's trace id."""
        factory = functools.partial(builtin_catalog_factory, "tpch")
        queries = [tpch_q5_like_query(), tpch_small_join_query()]
        catalog = build_tpch_like_catalog()
        candidates = CandidateGenerator(catalog).for_workload(queries)
        builder = WorkloadCacheBuilder(
            catalog, WorkloadBuilderOptions(jobs=2), catalog_factory=factory
        )
        tracer = get_tracer()
        with tracer.span("test_parallel_build", root=True) as root:
            result = builder.build(queries, candidates)
        assert result.report.queries_built == 2

        build_span = root.children[0]
        assert build_span.name == "inum.build_workload"
        workers = [
            span for span in build_span.children
            if span.name == "inum.build_worker"
        ]
        assert {span.attributes["query"] for span in workers} == {
            query.name for query in queries
        }
        for span in workers:
            assert span.trace_id == root.trace_id
            assert span.parent_id == build_span.span_id
            assert span.duration_seconds > 0.0

    def test_untraced_parallel_build_ships_no_spans(self):
        factory = functools.partial(builtin_catalog_factory, "tpch")
        queries = [tpch_small_join_query()]
        catalog = build_tpch_like_catalog()
        candidates = CandidateGenerator(catalog).for_workload(queries)
        builder = WorkloadCacheBuilder(
            catalog, WorkloadBuilderOptions(jobs=2), catalog_factory=factory
        )
        result = builder.build(queries, candidates)
        assert result.report.queries_built == 1
        assert not get_tracer().active
