"""Tests for plan-cache serialization (save/load round trips)."""

import pytest

from repro.catalog.index import Index
from repro.inum import AtomicConfiguration, InumCostModel
from repro.inum.serialization import (
    FORMAT_VERSION,
    cache_from_dict,
    cache_to_dict,
    load_cache,
    save_cache,
)
from repro.optimizer import Optimizer
from repro.pinum import PinumCacheBuilder
from repro.util.errors import PlanningError


@pytest.fixture
def candidates():
    return [
        Index("sales", ["s_customer"]),
        Index("sales", ["s_customer", "s_amount", "s_product"]),
        Index("customers", ["c_id"]),
        Index("products", ["p_category", "p_id", "p_price"]),
    ]


@pytest.fixture
def cache(small_catalog, join_query, candidates):
    return PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)


class TestDictRoundTrip:
    def test_round_trip_preserves_estimates(self, cache, join_query, candidates):
        payload = cache_to_dict(cache)
        restored = cache_from_dict(payload, join_query)
        original_model = InumCostModel(cache)
        restored_model = InumCostModel(restored)
        configurations = [
            AtomicConfiguration([]),
            AtomicConfiguration([candidates[0], candidates[2]]),
            AtomicConfiguration([candidates[1], candidates[2], candidates[3]]),
        ]
        for configuration in configurations:
            assert restored_model.estimate(configuration) == pytest.approx(
                original_model.estimate(configuration)
            )

    def test_round_trip_preserves_structure(self, cache, join_query):
        restored = cache_from_dict(cache_to_dict(cache), join_query)
        assert restored.entry_count == cache.entry_count
        assert restored.combination_count == cache.combination_count
        assert restored.unique_plan_count() == cache.unique_plan_count()
        assert len(restored.access_costs) == len(cache.access_costs)
        assert restored.build_stats.optimizer_calls_total == cache.build_stats.optimizer_calls_total

    def test_payload_is_json_friendly(self, cache):
        import json

        text = json.dumps(cache_to_dict(cache))
        assert "format_version" in text

    def test_version_field_present(self, cache):
        assert cache_to_dict(cache)["format_version"] == FORMAT_VERSION


class TestValidation:
    def test_wrong_version_rejected(self, cache, join_query):
        payload = cache_to_dict(cache)
        payload["format_version"] = 999
        with pytest.raises(PlanningError):
            cache_from_dict(payload, join_query)

    def test_wrong_query_rejected(self, cache, simple_query):
        payload = cache_to_dict(cache)
        with pytest.raises(PlanningError):
            cache_from_dict(payload, simple_query)


class TestFileRoundTrip:
    def test_save_and_load(self, cache, join_query, tmp_path, candidates):
        path = tmp_path / "cache.json"
        save_cache(cache, str(path))
        restored = load_cache(str(path), join_query)
        restored.validate()
        assert InumCostModel(restored).estimate(
            AtomicConfiguration([candidates[0]])
        ) == pytest.approx(InumCostModel(cache).estimate(AtomicConfiguration([candidates[0]])))
