"""Tests for the watch_* serve operations and server observability."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.advisor import AdvisorOptions
from repro.api.serve import ServeFrontend
from repro.api.server import TuningClient, TuningServer
from repro.util.units import megabytes
from repro.workloads.tpch_like import TpchLikeWorkload


@pytest.fixture
def frontend():
    return ServeFrontend(
        default_catalog="tpch",
        options=AdvisorOptions(space_budget_bytes=megabytes(512), max_candidates=20),
    )


@pytest.fixture(scope="module")
def trace_lines():
    return TpchLikeWorkload(seed=7).trace(480, seed=11, phases=("read", "write"))


def _ok(response):
    assert response["ok"] is True, response.get("error")
    return response["result"]


class TestWatchOps:
    def test_watch_lifecycle_over_a_memory_feed(self, frontend, trace_lines):
        result = _ok(frontend.handle({"op": "watch_start", "params": {
            "window_statements": 120, "drift_high_water": 0.3, "drift_low_water": 0.1,
        }}))
        assert result["watching"] is True
        assert result["source"] == "memory"
        assert result["config"]["window_statements"] == 120

        decisions = []
        for start in range(0, len(trace_lines), 120):
            result = _ok(frontend.handle({"op": "watch_stats", "params": {
                "statements": trace_lines[start:start + 120],
            }}))
            decisions.extend(result["decisions"])
        kinds = [d["kind"] for d in decisions]
        assert kinds.count("bootstrap") == 1
        assert kinds.count("drift") == 1
        statistics = result["statistics"]
        assert statistics["retunes_triggered"] == 1
        assert statistics["statements_ingested"] == len(trace_lines)
        for decision in decisions:
            assert decision["caches_built"] == decision["new_templates"]

        stopped = _ok(frontend.handle({"op": "watch_stop"}))
        assert stopped["watching"] is False
        assert stopped["statistics"]["retunes_triggered"] == 1

    def test_watch_start_switches_the_session_to_per_query(self, frontend):
        _ok(frontend.handle({"op": "watch_start"}))
        session = frontend.session_for()
        assert session.options.candidate_policy == "per_query"

    def test_double_start_and_missing_watcher_are_errors(self, frontend):
        _ok(frontend.handle({"op": "watch_start"}))
        again = frontend.handle({"op": "watch_start"})
        assert again["ok"] is False
        assert "already watching" in again["error"]["message"]
        missing = frontend.handle({"op": "watch_stats", "catalog": "star"})
        assert missing["ok"] is False
        assert "watch_start first" in missing["error"]["message"]
        orphan_stop = frontend.handle({"op": "watch_stop", "catalog": "star"})
        assert orphan_stop["ok"] is False

    def test_statements_push_requires_a_memory_source(self, frontend, tmp_path):
        path = tmp_path / "feed.ndjson"
        path.write_text("")
        _ok(frontend.handle({"op": "watch_start", "params": {"follow": str(path)}}))
        pushed = frontend.handle({"op": "watch_stats", "params": {"statements": ["SELECT 1"]}})
        assert pushed["ok"] is False
        assert "follows a file" in pushed["error"]["message"]

    def test_file_watcher_tails_the_feed(self, frontend, tmp_path, trace_lines):
        path = tmp_path / "feed.ndjson"
        path.write_text("")
        _ok(frontend.handle({"op": "watch_start", "params": {
            "follow": str(path), "window_statements": 120,
            "drift_high_water": 0.3, "drift_low_water": 0.1,
        }}))
        decisions = []
        for start in range(0, len(trace_lines), 120):
            with path.open("a") as handle:
                handle.write("\n".join(trace_lines[start:start + 120]) + "\n")
            decisions.extend(_ok(frontend.handle({"op": "watch_stats"}))["decisions"])
        assert [d["kind"] for d in decisions].count("drift") == 1

    def test_statement_dicts_are_accepted(self, frontend):
        _ok(frontend.handle({"op": "watch_start", "params": {"window_statements": 2}}))
        result = _ok(frontend.handle({"op": "watch_stats", "params": {"statements": [
            {"sql": "SELECT orders.o_totalprice FROM orders "
                    "WHERE orders.o_totalprice < 500"},
            json.loads('{"sql": "SELECT orders.o_totalprice FROM orders '
                       'WHERE orders.o_totalprice < 500"}'),
        ]}}))
        assert result["statistics"]["bootstrapped"] is True

    def test_stats_surfaces_watch_and_retune_state(self, frontend, trace_lines):
        base = _ok(frontend.handle({"op": "stats"}))
        assert base["watch"] is None
        assert base["retunes_accepted"] == 0
        assert base["last_retune_at"] is None
        _ok(frontend.handle({"op": "watch_start", "params": {
            "window_statements": 120, "drift_high_water": 0.3, "drift_low_water": 0.1,
        }}))
        for start in range(0, len(trace_lines), 120):
            _ok(frontend.handle({"op": "watch_stats", "params": {
                "statements": trace_lines[start:start + 120],
            }}))
        stats = _ok(frontend.handle({"op": "stats"}))
        assert stats["watch"]["fires"] == 1
        assert stats["retunes_accepted"] + stats["retunes_rejected"] == 1
        assert stats["last_recommend_at"] is not None
        assert stats["last_retune_at"] is not None
        assert stats["last_retune_at"] >= stats["last_recommend_at"] - 1e-6

    def test_session_overview_reports_liveness(self, frontend):
        _ok(frontend.handle({"op": "recommend"}))
        _ok(frontend.handle({"op": "watch_start"}))
        (overview,) = frontend.session_overview()
        assert overview["catalog"] == "tpch"
        assert overview["recommend_calls"] == 1
        assert overview["watching"] is True
        assert overview["age_seconds"] >= 0.0
        assert overview["last_recommend_at"] is not None
        assert overview["last_retune_at"] is None


class TestServerObservability:
    def test_server_stats_gains_uptime_and_session_detail(self):
        async def scenario():
            server = TuningServer(
                port=0,
                default_catalog="tpch",
                options=AdvisorOptions(
                    space_budget_bytes=megabytes(512), max_candidates=20
                ),
            )
            await server.start()
            try:
                async with TuningClient("127.0.0.1", server.port,
                                        session_id="observer") as client:
                    await client.call("recommend")
                    response = await client.call("server_stats")
            finally:
                await server.stop()
            return response

        response = asyncio.run(scenario())
        result = _ok(response)
        assert result["uptime_seconds"] > 0.0
        detail = result["session_detail"]["observer"]
        assert len(detail) == 1
        assert detail[0]["catalog"] == "tpch"
        assert detail[0]["recommend_calls"] == 1
        assert detail[0]["last_recommend_at"] is not None
        assert detail[0]["watching"] is False
