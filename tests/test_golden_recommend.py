"""Golden end-to-end regression test: the fig-7 recommendation is pinned.

The star-schema workload (seed 7, ten queries, 5 GB budget, 60 candidates)
must keep producing *exactly* this recommendation -- chosen indexes, costs,
sizes -- under every evaluation engine.  A refactor that silently changes
any of it (a cost-model tweak, a tie-break change, a cache layout bug)
fails here first, with a diff a human can read.

The golden values were recorded from the scalar engine.  The compiled
python backend must reproduce the pick sequence bit-for-bit; the numpy
backend is allowed to permute *equal-benefit* picks (documented 1-ulp tie
behaviour of vectorized reduction) but must select the same index set at
costs within 1e-9.
"""

from __future__ import annotations

import pytest

from repro.advisor.advisor import AdvisorOptions
from repro.api.session import TuningSession
from repro.inum.compiled import numpy_available
from repro.util.units import gigabytes
from repro.workloads import StarSchemaWorkload

#: Candidate cap: small enough for test time, large enough that every
#: workload query has candidates on all of its tables.
MAX_CANDIDATES = 60

#: The pinned recommendation (scalar engine, exact pick order).
GOLDEN_PICKS = [
    ("fact", ("fact_dim01_id", "fact_dim03_id", "fact_dim07_id")),
    ("fact", ("fact_dim05_id",)),
    ("dim07", ("dim07_id", "dim07_a2")),
    ("dim06", ("dim06_id", "dim06_a3")),
    ("dim08", ("dim08_id", "dim08_a3", "dim08_a1")),
    ("dim05", ("dim05_id",)),
    ("dim06", ("dim06_a3", "dim06_a1", "dim06_id")),
    ("dim05", ("dim05_a2", "dim05_a1", "dim05_id")),
]
GOLDEN_CANDIDATE_COUNT = 60
GOLDEN_COST_BEFORE = 22105639.39485733
GOLDEN_COST_AFTER = 11556761.796832442
GOLDEN_TOTAL_INDEX_BYTES = 4674527232
GOLDEN_PER_QUERY_AFTER = {
    "Q1": 43654.386746415046,
    "Q2": 2083969.9453298592,
    "Q3": 38140.216231149316,
    "Q4": 183454.1864345207,
    "Q5": 2301839.2262930963,
    "Q6": 162059.76196528826,
    "Q7": 2297115.9411953827,
    "Q8": 2131143.2667092565,
    "Q9": 184960.87996690383,
    "Q10": 2130423.98596057,
}

_ENGINES = ["scalar", "python"] + (["numpy"] if numpy_available() else [])
# The fused arena (PR 7) inherits numpy's tie allowance: its regrouped sums
# may permute equal-benefit picks, but never the pick *set* or any cost.
_ENGINES.append("arena")


def _recommend(engine: str):
    workload = StarSchemaWorkload(seed=7)
    session = TuningSession(
        workload.catalog(),
        workload.queries(),
        options=AdvisorOptions(
            space_budget_bytes=gigabytes(5),
            max_candidates=MAX_CANDIDATES,
            engine=engine,
        ),
    )
    return session.recommend().result


@pytest.mark.parametrize("engine", _ENGINES)
def test_fig7_recommendation_is_pinned(engine):
    result = _recommend(engine)
    picks = [(index.table, index.columns) for index in result.selected_indexes]

    if engine in ("scalar", "python"):
        assert picks == GOLDEN_PICKS, (
            f"{engine} engine changed the pinned pick sequence:\n"
            f"  got      {picks}\n  expected {GOLDEN_PICKS}"
        )
    else:
        assert sorted(picks) == sorted(GOLDEN_PICKS), (
            f"{engine} engine changed the pinned pick *set*:\n"
            f"  got      {sorted(picks)}\n  expected {sorted(GOLDEN_PICKS)}"
        )

    assert result.candidate_count == GOLDEN_CANDIDATE_COUNT
    assert result.candidates_pruned_for_writes == 0
    assert result.total_index_bytes == GOLDEN_TOTAL_INDEX_BYTES
    assert result.workload_cost_before == pytest.approx(GOLDEN_COST_BEFORE, rel=1e-9)
    assert result.workload_cost_after == pytest.approx(GOLDEN_COST_AFTER, rel=1e-9)
    assert set(result.per_query_cost_after) == set(GOLDEN_PER_QUERY_AFTER)
    for name, expected in GOLDEN_PER_QUERY_AFTER.items():
        assert result.per_query_cost_after[name] == pytest.approx(expected, rel=1e-9), (
            f"{engine} engine moved {name}'s post-recommendation cost"
        )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_arena_engine_is_pinned_to_numpy():
    """The fused arena reproduces the per-query numpy recommendation."""
    arena = _recommend("arena")
    reference = _recommend("numpy")
    arena_picks = sorted((i.table, i.columns) for i in arena.selected_indexes)
    numpy_picks = sorted((i.table, i.columns) for i in reference.selected_indexes)
    assert arena_picks == numpy_picks
    assert arena.workload_cost_after == pytest.approx(
        reference.workload_cost_after, rel=1e-9
    )
    for name, expected in reference.per_query_cost_after.items():
        assert arena.per_query_cost_after[name] == pytest.approx(expected, rel=1e-9)


def test_selectors_agree_on_the_golden_workload():
    """The exhaustive reference loop pins the very same recommendation."""
    workload = StarSchemaWorkload(seed=7)
    session = TuningSession(
        workload.catalog(),
        workload.queries(),
        options=AdvisorOptions(
            space_budget_bytes=gigabytes(5),
            max_candidates=MAX_CANDIDATES,
            engine="python",
            selector="exhaustive",
        ),
    )
    result = session.recommend().result
    picks = [(index.table, index.columns) for index in result.selected_indexes]
    assert picks == GOLDEN_PICKS
    assert result.workload_cost_after == pytest.approx(GOLDEN_COST_AFTER, rel=1e-9)
