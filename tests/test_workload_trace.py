"""Tests for the deterministic NDJSON trace emitter (repro.workloads.trace)."""

from __future__ import annotations

import json

import pytest

from repro.query.parser import parse_statement
from repro.util.errors import ReproError
from repro.workloads import StarSchemaWorkload, TracePhase, emit_trace, zipf_weights
from repro.workloads.tpch_like import TpchLikeWorkload
from repro.workloads.trace import resolve_phases


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(8, 1.5)
        assert sum(weights) == pytest.approx(1.0)
        assert weights == sorted(weights, reverse=True)
        assert all(weight > 0 for weight in weights)

    def test_zero_skew_is_uniform(self):
        weights = zipf_weights(5, 0.0)
        assert all(weight == pytest.approx(0.2) for weight in weights)

    def test_skew_ratio(self):
        weights = zipf_weights(4, 1.0)
        assert weights[0] / weights[1] == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ReproError, match="count >= 1"):
            zipf_weights(0, 1.0)


class TestTracePhase:
    def test_rejects_empty_pool(self):
        with pytest.raises(ReproError, match="no statements"):
            TracePhase(name="empty", statements=())

    def test_rejects_negative_skew(self):
        statements = tuple(StarSchemaWorkload(seed=7).queries()[:1])
        with pytest.raises(ReproError, match="skew must be >= 0"):
            TracePhase(name="bad", statements=statements, skew=-0.5)


class TestEmitTrace:
    def test_deterministic_for_same_seed(self):
        workload = StarSchemaWorkload(seed=7)
        first = workload.trace(60, seed=3, phases=("read", "write"))
        second = workload.trace(60, seed=3, phases=("read", "write"))
        assert first == second

    def test_different_seed_differs(self):
        workload = StarSchemaWorkload(seed=7)
        assert workload.trace(60, seed=3) != workload.trace(60, seed=4)

    def test_lines_are_parseable_ndjson(self):
        workload = TpchLikeWorkload(seed=7)
        for line in workload.trace(20, seed=1, phases=("mixed",)):
            payload = json.loads(line)
            assert set(payload) == {"phase", "template", "sql"}
            statement = parse_statement(payload["sql"], name=payload["template"])
            assert statement.name == payload["template"]

    def test_phases_split_the_count(self):
        workload = StarSchemaWorkload(seed=7)
        lines = workload.trace(101, seed=5, phases=("read", "write"))
        phases = [json.loads(line)["phase"] for line in lines]
        assert phases[:51] == ["read"] * 51  # remainder goes to the earliest phase
        assert phases[51:] == ["write"] * 50

    def test_write_phase_samples_dml_only(self):
        workload = StarSchemaWorkload(seed=7)
        dml_names = {statement.name for statement in workload.dml_statements()}
        lines = workload.trace(40, seed=5, phases=("write",))
        assert {json.loads(line)["template"] for line in lines} <= dml_names

    def test_zipf_skew_concentrates_mass(self):
        workload = StarSchemaWorkload(seed=7)
        lines = workload.trace(400, seed=2, phases=("read",), skew=2.5)
        counts: dict = {}
        for line in lines:
            template = json.loads(line)["template"]
            counts[template] = counts.get(template, 0) + 1
        top = max(counts.values())
        assert top > 400 * 0.4  # the rank-1 template dominates under heavy skew

    def test_rejects_no_phases_and_tiny_count(self):
        workload = StarSchemaWorkload(seed=7)
        with pytest.raises(ReproError, match="at least one phase"):
            emit_trace([], 10)
        with pytest.raises(ReproError, match="count >= 2"):
            workload.trace(1, phases=("read", "write"))

    def test_unknown_preset_rejected(self):
        workload = StarSchemaWorkload(seed=7)
        with pytest.raises(ReproError, match="unknown trace phase"):
            workload.trace(10, phases=("oltp",))

    def test_explicit_trace_phase_passes_through(self):
        workload = TpchLikeWorkload(seed=7)
        custom = TracePhase(name="hot", statements=tuple(workload.queries()[:1]), skew=0.0)
        resolved = resolve_phases(workload, [custom, "read"], skew=1.0)
        assert resolved[0] is custom
        assert resolved[1].name == "read"
        lines = emit_trace(resolved, 10, seed=9)
        assert json.loads(lines[0])["phase"] == "hot"
