"""Property-based (hypothesis) round-trip and robustness tests for the parser.

Two families:

* **round trip** -- for randomized valid SELECT and DML ASTs,
  ``parse(to_sql(x)) == x`` and rendering is a fixed point
  (``to_sql(parse(to_sql(x))) == to_sql(x)``), so the parser and the
  renderers can never drift apart, and
* **robustness** -- arbitrary text (including mutilated valid SQL) either
  parses or raises the repo's typed :class:`QueryError`; no input may
  escape as an internal exception (IndexError, ValueError, RecursionError,
  ...).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.ast import (
    Aggregate,
    AggregateFunction,
    ColumnRef,
    Comparison,
    DmlKind,
    DmlStatement,
    JoinPredicate,
    OrderByItem,
    Predicate,
    Query,
)
from repro.query.parser import parse_query, parse_statement
from repro.util.errors import QueryError

_settings = settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)

# Identifiers the tokenizer accepts and the keyword table never swallows.
_TABLES = ("alpha", "beta", "gamma", "delta")
_COLUMNS = ("c1", "c2", "c3", "k_id", "val")

#: Numeric literals: any finite float round-trips (the tokenizer reads the
#: sign and scientific notation ``str(float(x))`` may emit).  Bounded to
#: 1e300 so BETWEEN's ``low + span`` cannot overflow to infinity.
_numbers = st.one_of(
    st.integers(min_value=-(10**19), max_value=10**19).map(float),
    st.integers(min_value=-(10**6), max_value=10**6).map(lambda n: n / 4.0),
    st.floats(min_value=-1e300, max_value=1e300, allow_nan=False),
)

_filter_ops = st.sampled_from([
    Comparison.EQ, Comparison.NE, Comparison.LT,
    Comparison.LE, Comparison.GT, Comparison.GE,
])


def _column(table: str) -> st.SearchStrategy[ColumnRef]:
    return st.sampled_from(_COLUMNS).map(lambda c: ColumnRef(table, c))


@st.composite
def select_queries(draw) -> Query:
    tables = tuple(draw(st.lists(
        st.sampled_from(_TABLES), min_size=1, max_size=3, unique=True
    )))
    select_columns = []
    aggregates = []
    for table in tables:
        for column in draw(st.lists(_column(table), min_size=0, max_size=2)):
            if column not in select_columns:
                select_columns.append(column)
    if draw(st.booleans()) or not select_columns:
        func = draw(st.sampled_from(list(AggregateFunction)))
        column = None if func is AggregateFunction.COUNT else draw(_column(tables[0]))
        aggregates.append(Aggregate(func, column))
    filters = []
    for table in tables:
        if draw(st.booleans()):
            if draw(st.booleans()):
                low = draw(_numbers)
                filters.append(Predicate(
                    draw(_column(table)), Comparison.BETWEEN, low, low + draw(_numbers)
                ))
            else:
                filters.append(Predicate(
                    draw(_column(table)), draw(_filter_ops), draw(_numbers)
                ))
    joins = []
    for left_table, right_table in zip(tables, tables[1:]):
        joins.append(JoinPredicate(
            draw(_column(left_table)), draw(_column(right_table))
        ))
    group_by = []
    order_by = []
    if select_columns and draw(st.booleans()):
        group_by.append(draw(st.sampled_from(select_columns)))
    if select_columns and draw(st.booleans()):
        order_by.append(OrderByItem(
            draw(st.sampled_from(select_columns)), draw(st.booleans())
        ))
    return Query(
        name="prop",
        tables=tables,
        select_columns=tuple(select_columns),
        aggregates=tuple(aggregates),
        filters=tuple(filters),
        joins=tuple(joins),
        group_by=tuple(group_by),
        order_by=tuple(order_by),
    )


@st.composite
def dml_statements(draw) -> DmlStatement:
    table = draw(st.sampled_from(_TABLES))
    kind = draw(st.sampled_from(list(DmlKind)))
    filters = tuple(
        Predicate(ColumnRef(table, column), draw(_filter_ops), draw(_numbers))
        for column in draw(st.lists(
            st.sampled_from(_COLUMNS), min_size=0, max_size=2, unique=True
        ))
    ) if kind is not DmlKind.INSERT else ()
    if kind is DmlKind.INSERT:
        columns = tuple(draw(st.lists(
            st.sampled_from(_COLUMNS), min_size=1, max_size=3, unique=True
        )))
        values = tuple(
            tuple(draw(_numbers) for _ in columns)
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        return DmlStatement(name="prop", kind=kind, table=table,
                            columns=columns, values=values)
    if kind is DmlKind.UPDATE:
        columns = tuple(draw(st.lists(
            st.sampled_from(_COLUMNS), min_size=1, max_size=2, unique=True
        )))
        set_values = tuple(draw(_numbers) for _ in columns)
        return DmlStatement(name="prop", kind=kind, table=table, columns=columns,
                            set_values=set_values, filters=filters)
    return DmlStatement(name="prop", kind=kind, table=table, filters=filters)


class TestRoundTripProperties:
    @_settings
    @given(query=select_queries())
    def test_select_round_trips_exactly(self, query):
        sql = query.to_sql()
        reparsed = parse_query(sql, name="prop")
        assert reparsed == query
        assert reparsed.to_sql() == sql

    @_settings
    @given(query=select_queries())
    def test_parse_statement_agrees_with_parse_query(self, query):
        sql = query.to_sql()
        assert parse_statement(sql, name="prop") == parse_query(sql, name="prop")

    @_settings
    @given(statement=dml_statements())
    def test_dml_round_trips_exactly(self, statement):
        sql = statement.to_sql()
        reparsed = parse_statement(sql, name="prop")
        assert reparsed == statement
        assert reparsed.to_sql() == sql

    @_settings
    @given(statement=dml_statements())
    def test_dml_accepts_unqualified_columns(self, statement):
        """Stripping the target-table qualifiers parses to the same statement."""
        sql = statement.to_sql().replace(f"{statement.table}.", "")
        assert parse_statement(sql, name="prop") == statement


class TestParserRobustness:
    @_settings
    @given(text=st.text(max_size=200))
    def test_arbitrary_text_never_raises_internal_errors(self, text):
        for entry in (parse_query, parse_statement):
            try:
                entry(text)
            except QueryError:
                pass  # the one sanctioned failure mode

    @_settings
    @given(
        source=st.one_of(select_queries(), dml_statements()),
        start=st.integers(min_value=0, max_value=199),
        length=st.integers(min_value=1, max_value=40),
    )
    def test_mutilated_valid_sql_never_raises_internal_errors(self, source, start, length):
        sql = source.to_sql()
        mutated = sql[:start] + sql[start + length:]
        try:
            parse_statement(mutated)
        except QueryError:
            pass

    @_settings
    @given(
        source=st.one_of(select_queries(), dml_statements()),
        position=st.integers(min_value=0, max_value=200),
        junk=st.text(
            alphabet="().,*<>=!0123456789abc_ \n", min_size=1, max_size=10
        ),
    )
    def test_injected_junk_never_raises_internal_errors(self, source, position, junk):
        sql = source.to_sql()
        mutated = sql[:position] + junk + sql[position:]
        try:
            parse_statement(mutated)
        except QueryError:
            pass
