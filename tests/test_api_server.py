"""The asyncio TCP tuning server: protocol, sessions, drain semantics.

Each test boots an in-process :class:`TuningServer` on an ephemeral port
and drives it with real sockets (the stream-based
:class:`~repro.api.server.TuningClient`), so the whole path -- reader task,
per-session locks, thread-pool dispatch, drain-then-ack shutdown -- is
exercised exactly as ``repro serve --tcp`` runs it.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.server import TuningClient, TuningServer


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(work, **server_kwargs):
    server = TuningServer(default_catalog="tpch", **server_kwargs)
    await server.start()
    try:
        return await work(server)
    finally:
        await server.stop()


class TestRoundTrips:
    def test_ping_echoes_id_and_op(self):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                return await client.call("ping")

        response = run(_with_server(work))
        assert response["ok"] is True
        assert response["op"] == "ping"
        assert response["id"] == 1
        assert response["result"]["pong"] is True

    def test_recommend_and_evaluate(self):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                recommend = await client.call("recommend")
                evaluate = await client.call("evaluate", {"indexes": []})
                return recommend, evaluate

        recommend, evaluate = run(_with_server(work))
        assert recommend["ok"], recommend
        assert recommend["result"]["selected_indexes"]
        assert evaluate["ok"], evaluate
        assert evaluate["result"]["total_cost"] > 0

    def test_malformed_line_answers_error_and_keeps_connection(self):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                client._writer.write(b"this is not json\n")
                await client._writer.drain()
                error = await client.receive()
                alive = await client.call("ping")
                return error, alive

        error, alive = run(_with_server(work))
        assert error["ok"] is False
        assert error["id"] is None
        assert "not valid JSON" in error["error"]["message"]
        assert alive["ok"] is True

    def test_unknown_op_is_answered_not_fatal(self):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                bad = await client.call("frobnicate")
                good = await client.call("ping")
                return bad, good

        bad, good = run(_with_server(work))
        assert bad["ok"] is False
        assert "unknown operation" in bad["error"]["message"]
        assert good["ok"] is True


class TestSessions:
    def test_named_session_survives_reconnect(self):
        """Warm state is keyed by session_id, not by connection."""
        async def work(server):
            async with TuningClient(
                "127.0.0.1", server.port, session_id="tenant-a"
            ) as client:
                first = await client.call("recommend")
            async with TuningClient(
                "127.0.0.1", server.port, session_id="tenant-a"
            ) as client:
                second = await client.call("recommend")
            return first, second

        first, second = run(_with_server(work))
        assert first["result"]["session"]["caches_built"] > 0
        assert second["result"]["session"]["caches_built"] == 0
        assert second["result"]["session"]["caches_reused"] > 0

    def test_anonymous_connections_get_private_sessions(self):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as first:
                await first.call(
                    "add_queries",
                    {"queries": [{
                        "sql": "SELECT orders.o_orderkey FROM orders",
                        "name": "mine",
                    }]},
                )
                mine = await first.call("workload")
            async with TuningClient("127.0.0.1", server.port) as second:
                theirs = await second.call("workload")
            return mine, theirs

        mine, theirs = run(_with_server(work))
        names_mine = [q["name"] for q in mine["result"]["queries"]]
        names_theirs = [q["name"] for q in theirs["result"]["queries"]]
        assert "mine" in names_mine
        assert "mine" not in names_theirs

    def test_sessions_share_the_tier(self):
        async def work(server):
            async with TuningClient(
                "127.0.0.1", server.port, session_id="builder"
            ) as client:
                await client.call("recommend")
            async with TuningClient(
                "127.0.0.1", server.port, session_id="adopter"
            ) as client:
                warm = await client.call("recommend")
                stats = await client.call("server_stats")
            return warm, stats

        warm, stats = run(_with_server(work))
        assert warm["result"]["session"]["caches_built"] == 0
        assert warm["result"]["session"]["caches_shared"] > 0
        tier = stats["result"]["tier"]
        assert tier["cache_promotions"] > 0
        assert tier["cache_hits"] >= warm["result"]["session"]["caches_shared"]
        assert stats["result"]["sessions"] == 2


class TestDrainSemantics:
    def test_shutdown_during_pipelined_recommend_drains_first(self):
        """A shutdown racing a recommend never swallows the response."""
        async def work(server):
            client = TuningClient("127.0.0.1", server.port, session_id="drain")
            await client.connect()
            await client.send("recommend")
            await client.send("shutdown")
            responses = [await client.receive() for _ in range(3)]
            with pytest.raises(EOFError):
                await client.receive()
            await client.close()
            return responses

        recommend, shutdown, ack = run(_with_server(work))
        assert recommend["op"] == "recommend" and recommend["ok"], recommend
        assert recommend["result"]["selected_indexes"]
        assert shutdown["op"] == "shutdown" and shutdown["ok"]
        assert ack["id"] is None
        assert ack["result"]["reason"] == "shutdown"

    def test_eof_drains_buffered_requests_and_acks(self):
        """Half-closing after a burst still answers every request."""
        async def work(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            for request_id in range(4):
                writer.write((json.dumps(
                    {"id": request_id, "op": "ping", "session_id": "eof"}
                ) + "\n").encode())
            await writer.drain()
            writer.write_eof()
            lines = []
            while True:
                line = await reader.readline()
                if not line:
                    break
                lines.append(json.loads(line))
            writer.close()
            return lines

        lines = run(_with_server(work))
        assert len(lines) == 5  # 4 answers + the final ack
        assert [line["id"] for line in lines[:4]] == [0, 1, 2, 3]
        assert all(line["ok"] for line in lines[:4])
        assert lines[-1]["id"] is None
        assert lines[-1]["result"]["reason"] == "eof"

    def test_server_stop_acks_open_connections_with_signal_reason(self):
        """SIGTERM-path: live connections drain and get a final ack."""
        async def work(server):
            client = TuningClient("127.0.0.1", server.port)
            await client.connect()
            assert (await client.call("ping"))["ok"]
            stopper = asyncio.create_task(server.stop())
            ack = await asyncio.wait_for(client.receive(), timeout=10)
            await stopper
            await client.close()
            return ack

        ack = run(_with_server(work))
        assert ack["id"] is None
        assert ack["ok"] is True
        assert ack["result"]["reason"] == "signal"


class TestConcurrency:
    def test_concurrent_clients_are_answered_consistently(self):
        async def work(server):
            async def one(position):
                async with TuningClient(
                    "127.0.0.1", server.port, session_id=f"c{position}"
                ) as client:
                    response = await client.call("recommend")
                    assert response["ok"], response
                    return (
                        response["result"]["workload_cost_after"],
                        response["result"]["session"]["caches_built"],
                    )

            results = await asyncio.gather(*(one(i) for i in range(6)))
            stats = await _server_stats(server)
            return results, stats

        results, stats = run(_with_server(work))
        costs = {cost for cost, _ in results}
        assert len(costs) == 1, "all tenants must converge on one answer"
        builders = sum(1 for _, built in results if built > 0)
        # First-build-wins: concurrent initial recommends may each build,
        # but once the tier is warm nobody else does.
        assert builders >= 1
        assert stats["tier"]["caches_published"] >= 1


async def _server_stats(server):
    async with TuningClient("127.0.0.1", server.port) as client:
        response = await client.call("server_stats")
    return response["result"]
