"""Tests for the Access Path Collector and the keep-all-paths hook."""

import pytest

from repro.catalog.index import Index
from repro.optimizer.access_paths import AccessPathCollector
from repro.optimizer.cost_model import CostModel
from repro.optimizer.hooks import OptimizerHooks
from repro.optimizer.selectivity import SelectivityEstimator


@pytest.fixture
def collector(small_catalog):
    return AccessPathCollector(small_catalog, CostModel(), SelectivityEstimator(small_catalog))


class TestBasicCollection:
    def test_every_table_gets_a_seq_scan(self, collector, join_query):
        paths = collector.collect(join_query)
        for table in join_query.tables:
            assert any(p.method == "seqscan" for p in paths[table])

    def test_no_indexes_means_only_seq_scans(self, collector, join_query):
        paths = collector.collect(join_query)
        assert all(p.method == "seqscan" for table_paths in paths.values() for p in table_paths)

    def test_index_produces_index_path(self, small_catalog, collector, join_query, sample_index):
        small_catalog.add_index(sample_index)
        paths = collector.collect(join_query)
        index_paths = [p for p in paths["sales"] if p.method == "indexscan"]
        assert index_paths
        assert index_paths[0].provided_order == "s_customer"

    def test_output_rows_independent_of_access_method(self, small_catalog, collector, join_query):
        small_catalog.add_index(Index("products", ["p_category"]))
        paths = collector.collect(join_query)
        rows = {round(p.rows, 3) for p in paths["products"]}
        assert len(rows) == 1

    def test_join_column_index_gets_probe_cost(self, small_catalog, collector, join_query, sample_index):
        small_catalog.add_index(sample_index)
        paths = collector.collect(join_query)
        index_path = next(p for p in paths["sales"] if p.method == "indexscan")
        assert index_path.supports_probe
        assert index_path.rescan_cost < index_path.cost

    def test_non_join_column_index_has_no_probe_cost(self, small_catalog, collector, join_query):
        small_catalog.add_index(Index("sales", ["s_amount"]))
        paths = collector.collect(join_query)
        index_path = next(p for p in paths["sales"] if p.method == "indexscan")
        assert not index_path.supports_probe

    def test_covering_index_detected(self, small_catalog, collector, simple_query):
        covering = Index("sales", ["s_customer", "s_amount", "s_quantity"])
        small_catalog.add_index(covering)
        paths = collector.collect(simple_query)
        index_path = next(p for p in paths["sales"] if p.method == "indexscan")
        assert index_path.covering


class TestFiltering:
    def test_keeps_cheapest_per_order(self, small_catalog, collector, join_query):
        cheap = Index("sales", ["s_customer"], name="narrow")
        wide = Index("sales", ["s_customer", "s_amount", "s_product", "s_quantity"], name="wide")
        small_catalog.add_index(cheap)
        small_catalog.add_index(wide)
        paths = collector.collect(join_query)
        non_covering = [p for p in paths["sales"]
                        if p.method == "indexscan" and p.provided_order == "s_customer"
                        and not p.covering]
        # Only the cheapest non-covering path per order survives the filter.
        assert len(non_covering) <= 1

    def test_hook_exports_all_paths(self, small_catalog, collector, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"], name="narrow"))
        small_catalog.add_index(Index("sales", ["s_customer", "s_amount"], name="wider"))
        small_catalog.add_index(Index("sales", ["s_amount"], name="other"))
        hooks = OptimizerHooks(keep_all_access_paths=True)
        collector.collect(join_query, hooks)
        sales_paths = [p for p in hooks.collected_access_paths if p.table == "sales"]
        index_names = {p.index.name for p in sales_paths if p.index is not None}
        assert index_names == {"narrow", "wider", "other"}

    def test_hook_disabled_exports_nothing(self, small_catalog, collector, join_query, sample_index):
        small_catalog.add_index(sample_index)
        hooks = OptimizerHooks.disabled()
        collector.collect(join_query, hooks)
        assert hooks.collected_access_paths == []

    def test_filtered_set_identical_with_and_without_hook(self, small_catalog, collector, join_query):
        """Enabling the export hook must not change what the planner sees."""
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        plain = collector.collect(join_query)
        hooked = collector.collect(join_query, OptimizerHooks(keep_all_access_paths=True))
        for table in join_query.tables:
            assert [p.describe() for p in plain[table]] == [p.describe() for p in hooked[table]]


class TestSelectivityInteraction:
    def test_filtered_leading_column_cheaper_than_unfiltered(self, small_catalog, collector):
        from repro.query import QueryBuilder

        small_catalog.add_index(Index("sales", ["s_quantity"]))
        narrow = (
            QueryBuilder("narrow").select("sales.s_amount").from_tables("sales")
            .where_between("sales.s_quantity", 1, 100).build()
        )
        wide = (
            QueryBuilder("wide").select("sales.s_amount").from_tables("sales")
            .where_between("sales.s_quantity", 1, 400_000).build()
        )
        narrow_cost = next(
            p.cost for p in collector.collect(narrow)["sales"] if p.method == "indexscan"
        )
        wide_cost = next(
            p.cost for p in collector.collect(wide)["sales"] if p.method == "indexscan"
        )
        assert narrow_cost < wide_cost
