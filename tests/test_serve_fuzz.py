"""Fuzz/robustness tests for the ``repro serve`` NDJSON protocol.

The service loop's contract: one structured response per non-empty request
line, errors as ``{"ok": false, "error": {...}}`` responses, and the loop
only ends on EOF or an explicit shutdown.  These tests throw malformed
JSON, wrong-shaped payloads, unknown operations and mid-stream EOF at a
frontend and assert the contract holds -- ``handle_line`` must never raise
and never kill the loop.
"""

from __future__ import annotations

import io
import json
import random
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.advisor.advisor import AdvisorOptions
from repro.api.serve import ServeFrontend

_settings = settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)


@pytest.fixture(scope="module")
def frontend():
    """One shared frontend; tpch is the cheaper catalog to warm."""
    return ServeFrontend(
        default_catalog="tpch",
        options=AdvisorOptions(max_candidates=8),
    )


def _assert_error_response(raw: str):
    response = json.loads(raw)
    assert response["ok"] is False
    assert isinstance(response["error"], dict)
    assert response["error"]["type"]
    assert isinstance(response["error"]["message"], str)
    return response


class TestMalformedLines:
    @_settings
    @given(line=st.text(max_size=200))
    def test_arbitrary_text_yields_exactly_one_json_response(self, frontend, line):
        raw = frontend.handle_line(line)
        response = json.loads(raw)
        assert "\n" not in raw
        assert response["ok"] in (True, False)

    @_settings
    @given(payload=st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
                  st.text(max_size=20)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=10), children, max_size=4),
        ),
        max_leaves=10,
    ))
    def test_arbitrary_json_payloads_never_crash(self, frontend, payload):
        raw = frontend.handle_line(json.dumps(payload))
        response = json.loads(raw)
        assert response["ok"] in (True, False)

    def test_non_object_json_is_a_structured_error(self, frontend):
        for line in ("[1, 2]", '"ping"', "42", "null", "true"):
            _assert_error_response(frontend.handle_line(line))

    def test_invalid_json_is_a_structured_error(self, frontend):
        for line in ("{", '{"op": "ping"', "ping}", "\x00", "{]"):
            response = _assert_error_response(frontend.handle_line(line))
            assert response["id"] is None


class TestUnknownAndIllTypedOps:
    @_settings
    @given(op=st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=20))
    def test_unknown_ops_list_the_known_ones(self, frontend, op):
        raw = frontend.handle_line(json.dumps({"id": 1, "op": op}))
        response = json.loads(raw)
        if response["ok"]:
            return  # hypothesis found a real operation; that is fine
        assert response["id"] == 1

    def test_known_ops_with_garbage_params_stay_structured(self, frontend):
        cases = [
            {"op": "explain", "params": {"sql": 42}},
            {"op": "explain", "params": {}},
            {"op": "evaluate", "params": {"indexes": "nope"}},
            {"op": "evaluate", "params": {"indexes": [{"table": 1}]}},
            {"op": "what_if", "params": {}},
            {"op": "add_queries", "params": {"queries": []}},
            {"op": "add_queries", "params": {"queries": ["SELECT"]}},
            {"op": "add_queries", "params": {"queries": [{"sql": "DELETE FROM"}]}},
            {"op": "remove_queries", "params": {"names": ["ghost"]}},
            {"op": "set_budget", "params": {"space_budget_bytes": "big"}},
            {"op": "set_budget", "params": {"space_budget_bytes": -5}},
            {"op": "set_weights", "params": {}},
            {"op": "set_weights", "params": {"weights": {"ghost": 1.0}}},
            {"op": "set_weights", "params": {"weights": {"tpch_q5_like": -2}}},
            {"op": "recommend", "params": {"nonsense": True}},
            {"op": "recommend", "params": {"statement_weights": "heavy"}},
            {"op": "ping", "params": "not-an-object"},
            {"op": 17},
            {"params": {}},
        ]
        for payload in cases:
            payload = dict(payload, id="fuzz")
            response = _assert_error_response(frontend.handle_line(json.dumps(payload)))
            assert response["id"] == "fuzz"

    def test_unknown_catalog_is_a_structured_error(self, frontend):
        # ping never resolves a session; workload does and must reject the
        # catalog without crashing the loop.
        raw = frontend.handle_line(json.dumps(
            {"id": 3, "op": "workload", "catalog": "oracle9i"}
        ))
        response = _assert_error_response(raw)
        assert "oracle9i" in response["error"]["message"]


class TestServeLoop:
    def _run(self, frontend, lines):
        stdin = io.StringIO("".join(line + "\n" for line in lines))
        stdout = io.StringIO()
        exit_code = frontend.serve(stdin, stdout)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        return exit_code, responses

    def test_garbage_between_requests_never_kills_the_loop(self):
        frontend = ServeFrontend(
            default_catalog="tpch", options=AdvisorOptions(max_candidates=8)
        )
        rng = random.Random(7)
        lines = []
        for number in range(20):
            lines.append(json.dumps({"id": number, "op": "ping"}))
            lines.append("".join(
                rng.choice(string.printable.replace("\n", "").replace("\r", ""))
                for _ in range(rng.randint(1, 60))
            ))
        exit_code, responses = self._run(frontend, lines)
        assert exit_code == 0
        assert len(responses) == 40
        pings = [r for r in responses if r["ok"]]
        assert len(pings) == 20

    def test_mid_stream_eof_exits_cleanly(self):
        frontend = ServeFrontend(
            default_catalog="tpch", options=AdvisorOptions(max_candidates=8)
        )
        # A truncated request line (no trailing newline, cut mid-JSON)
        # followed by EOF: one error response, clean exit, reusable session.
        stdin = io.StringIO('{"id": 1, "op": "ping"}\n{"id": 2, "op": "recomm')
        stdout = io.StringIO()
        assert frontend.serve(stdin, stdout) == 0
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert len(responses) == 2
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is False
        # The frontend survives and keeps serving afterwards.
        followup = json.loads(frontend.handle_line('{"id": 3, "op": "ping"}'))
        assert followup["ok"] is True

    def test_empty_and_whitespace_lines_are_ignored(self):
        frontend = ServeFrontend(
            default_catalog="tpch", options=AdvisorOptions(max_candidates=8)
        )
        exit_code, responses = self._run(
            frontend, ["", "   ", "\t", json.dumps({"id": 1, "op": "ping"})]
        )
        assert exit_code == 0
        assert len(responses) == 1

    def test_shutdown_stops_reading_further_lines(self):
        frontend = ServeFrontend(
            default_catalog="tpch", options=AdvisorOptions(max_candidates=8)
        )
        exit_code, responses = self._run(frontend, [
            json.dumps({"id": 1, "op": "shutdown"}),
            json.dumps({"id": 2, "op": "ping"}),
        ])
        assert exit_code == 0
        assert len(responses) == 1
        assert responses[0]["result"]["shutting_down"] is True

    def test_bad_weight_leaves_the_workload_untouched(self):
        frontend = ServeFrontend(
            default_catalog="tpch", options=AdvisorOptions(max_candidates=8)
        )
        response = json.loads(frontend.handle_line(json.dumps({
            "id": 1, "op": "add_queries", "params": {"queries": [
                {"sql": "DELETE FROM orders WHERE o_orderdate BETWEEN 1 AND 2",
                 "name": "wx", "weight": "abc"},
            ]},
        })))
        assert response["ok"] is False
        workload = json.loads(frontend.handle_line(
            json.dumps({"id": 2, "op": "workload"})
        ))["result"]
        assert "wx" not in {entry["name"] for entry in workload["queries"]}
        # A corrected retry now succeeds (no duplicate-name residue).
        retry = json.loads(frontend.handle_line(json.dumps({
            "id": 3, "op": "add_queries", "params": {"queries": [
                {"sql": "DELETE FROM orders WHERE o_orderdate BETWEEN 1 AND 2",
                 "name": "wx", "weight": 2.0},
            ]},
        })))
        assert retry["ok"] is True

    def test_mixed_workload_ops_round_trip_through_serve(self):
        frontend = ServeFrontend(
            default_catalog="tpch", options=AdvisorOptions(max_candidates=8)
        )
        lines = [
            json.dumps({"id": 1, "op": "add_queries", "params": {"queries": [
                {"sql": "UPDATE orders SET o_totalprice = 9 "
                        "WHERE o_orderdate BETWEEN 100 AND 102",
                 "name": "w1", "weight": 5.0},
            ]}}),
            json.dumps({"id": 2, "op": "set_weights",
                        "params": {"weights": {"w1": 25.0}}}),
            json.dumps({"id": 3, "op": "workload"}),
        ]
        exit_code, responses = self._run(frontend, lines)
        assert exit_code == 0
        assert all(response["ok"] for response in responses)
        workload = responses[2]["result"]
        by_name = {entry["name"]: entry for entry in workload["queries"]}
        assert by_name["w1"]["kind"] == "update"
        assert by_name["w1"]["weight"] == 25.0
