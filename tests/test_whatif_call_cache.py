"""Tests for the memoizing what-if layer and its builder accounting."""

import pytest

from repro.advisor import CandidateGenerator
from repro.inum import InumCacheBuilder, InumCostModel
from repro.optimizer import Optimizer, OptimizerHooks, WhatIfCallCache
from repro.optimizer.whatif import WhatIfOptimizer
from repro.pinum import PinumCacheBuilder


class TestWhatIfCallCache:
    def test_identical_probe_hits(self, small_catalog, join_query, sample_index):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        first = cache.optimize_with_configuration(join_query, [sample_index])
        second = cache.optimize_with_configuration(join_query, [sample_index])
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert second is first
        assert cache.optimizer.call_count == 1

    def test_configuration_order_is_irrelevant(self, small_catalog, join_query):
        from repro.catalog.index import Index

        a = Index(table="sales", columns=["s_customer"])
        b = Index(table="customers", columns=["c_id"])
        cache = WhatIfCallCache(Optimizer(small_catalog))
        cache.optimize_with_configuration(join_query, [a, b])
        cache.optimize_with_configuration(join_query, [b, a])
        assert cache.statistics.hits == 1

    def test_nestloop_flag_separates_entries(self, small_catalog, join_query, sample_index):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        cache.optimize_with_configuration(join_query, [sample_index], enable_nestloop=False)
        cache.optimize_with_configuration(join_query, [sample_index], enable_nestloop=True)
        assert cache.statistics.misses == 2
        assert cache.statistics.hits == 0

    def test_plain_request_served_from_access_path_result(
        self, small_catalog, join_query, sample_index
    ):
        optimizer = Optimizer(small_catalog)
        cache = WhatIfCallCache(optimizer)
        hooked = cache.optimize_with_configuration(
            join_query, [sample_index], enable_nestloop=False,
            hooks=OptimizerHooks(keep_all_access_paths=True),
        )
        plain = cache.optimize_with_configuration(
            join_query, [sample_index], enable_nestloop=False
        )
        assert cache.statistics.hits == 1
        assert plain is hooked
        # The served plan must match what a direct, uncached call returns.
        direct = WhatIfOptimizer(Optimizer(small_catalog)).optimize_with_configuration(
            join_query, [sample_index], enable_nestloop=False
        )
        assert plain.cost == pytest.approx(direct.cost)

    def test_hooked_request_not_served_from_plain_result(
        self, small_catalog, join_query, sample_index
    ):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        cache.optimize_with_configuration(join_query, [sample_index])
        cache.optimize_with_configuration(
            join_query, [sample_index], hooks=OptimizerHooks(keep_all_access_paths=True)
        )
        assert cache.statistics.misses == 2

    def test_plain_request_not_served_from_ioc_plan_result(
        self, small_catalog, join_query, sample_index
    ):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        cache.optimize_with_configuration(
            join_query, [sample_index], hooks=OptimizerHooks.pinum_defaults()
        )
        cache.optimize_with_configuration(join_query, [sample_index])
        assert cache.statistics.misses == 2

    def test_clear_keeps_statistics(self, small_catalog, join_query, sample_index):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        cache.optimize_with_configuration(join_query, [sample_index])
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.misses == 1
        cache.optimize_with_configuration(join_query, [sample_index])
        assert cache.statistics.misses == 2


class TestInumBuilderAccounting:
    def test_memoized_build_matches_plain_build(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        plain = InumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)

        optimizer = Optimizer(small_catalog)
        call_cache = WhatIfCallCache(optimizer)
        memoized = InumCacheBuilder(optimizer, call_cache=call_cache).build_cache(
            join_query, candidates
        )

        assert memoized.entry_count == plain.entry_count
        assert len(memoized.access_costs) == len(plain.access_costs)
        plain_model, memo_model = InumCostModel(plain), InumCostModel(memoized)
        for index in candidates:
            assert memo_model.estimate_with_indexes([index]) == pytest.approx(
                plain_model.estimate_with_indexes([index])
            )

    def test_memoized_build_records_hits(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        optimizer = Optimizer(small_catalog)
        cache = InumCacheBuilder(
            optimizer, call_cache=WhatIfCallCache(optimizer)
        ).build_cache(join_query, candidates)
        stats = cache.build_stats
        # Access costs are collected first, so the plan phase's single-order
        # probes (and the empty-configuration probe) are memoized hits.
        assert stats.whatif_cache_hits > 0
        assert 0.0 < stats.whatif_hit_rate < 1.0
        assert stats.whatif_cache_misses == stats.optimizer_calls_total
        # Reported optimizer calls must match the optimizer's own counter.
        assert stats.optimizer_calls_total == optimizer.call_count
        assert stats.whatif_requests == stats.optimizer_calls_total + stats.whatif_cache_hits

    def test_plain_build_records_no_cache_traffic(self, small_catalog, join_query):
        cache = InumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query)
        assert cache.build_stats.whatif_cache_hits == 0
        assert cache.build_stats.whatif_cache_misses == 0
        assert cache.build_stats.whatif_hit_rate == 0.0


class TestPinumBuilderAccounting:
    def test_rebuild_is_answered_from_memory(self, small_catalog, join_query):
        candidates = CandidateGenerator(small_catalog).for_query(join_query)
        optimizer = Optimizer(small_catalog)
        call_cache = WhatIfCallCache(optimizer)
        first = PinumCacheBuilder(optimizer, call_cache=call_cache).build_cache(
            join_query, candidates
        )
        calls_after_first = optimizer.call_count
        second = PinumCacheBuilder(optimizer, call_cache=call_cache).build_cache(
            join_query, candidates
        )
        assert optimizer.call_count == calls_after_first
        assert second.build_stats.optimizer_calls_total == 0
        assert second.build_stats.whatif_cache_hits == first.build_stats.whatif_requests
        assert second.entry_count == first.entry_count
        assert len(second.access_costs) == len(first.access_costs)
