"""Tests for the classic INUM cache builder."""

from repro.catalog.index import Index
from repro.inum import InumBuilderOptions, InumCacheBuilder
from repro.inum.combinations import (
    candidate_probe_indexes,
    covering_configuration,
    covering_indexes_for,
)
from repro.optimizer import Optimizer
from repro.optimizer.interesting_orders import InterestingOrderCombination, combination_count


class TestCoveringIndexes:
    def test_one_index_per_non_empty_order(self, join_query):
        ioc = InterestingOrderCombination(
            {"sales": "s_customer", "customers": "c_id", "products": None}
        )
        indexes = covering_indexes_for(join_query, ioc)
        assert len(indexes) == 2
        assert all(index.hypothetical for index in indexes)
        config = covering_configuration(join_query, ioc)
        assert config.covers(ioc)

    def test_include_referenced_columns_builds_covering_indexes(self, join_query):
        ioc = InterestingOrderCombination({"sales": "s_customer"})
        [index] = covering_indexes_for(join_query, ioc, include_referenced_columns=True)
        assert index.columns[0] == "s_customer"
        assert set(join_query.columns_of("sales")) <= set(index.columns)

    def test_candidate_probe_indexes_cover_referenced_columns(self, join_query):
        candidates = candidate_probe_indexes(join_query)
        assert all(len(index.columns) == 1 for index in candidates)
        led_columns = {(index.table, index.leading_column) for index in candidates}
        for table in join_query.tables:
            for column in join_query.columns_of(table):
                assert (table, column) in led_columns


class TestPlanCachePhase:
    def test_one_call_per_combination_without_nlj(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        builder = InumCacheBuilder(optimizer, InumBuilderOptions(include_nestloop_plans=False))
        cache = builder.build_plan_cache(join_query)
        assert cache.build_stats.optimizer_calls_plans == combination_count(join_query)
        assert cache.build_stats.combinations_enumerated == combination_count(join_query)
        assert optimizer.call_count == combination_count(join_query)

    def test_nlj_option_doubles_calls(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        builder = InumCacheBuilder(optimizer, InumBuilderOptions(include_nestloop_plans=True))
        cache = builder.build_plan_cache(join_query)
        assert cache.build_stats.optimizer_calls_plans == 2 * combination_count(join_query)

    def test_max_combinations_cap(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        builder = InumCacheBuilder(
            optimizer, InumBuilderOptions(include_nestloop_plans=False, max_combinations=3)
        )
        cache = builder.build_plan_cache(join_query)
        assert cache.build_stats.optimizer_calls_plans == 3

    def test_entries_far_fewer_than_calls(self, small_catalog, join_query):
        """Section IV's redundancy: most per-IOC calls return duplicate plans."""
        optimizer = Optimizer(small_catalog)
        builder = InumCacheBuilder(optimizer, InumBuilderOptions(include_nestloop_plans=False))
        cache = builder.build_plan_cache(join_query)
        assert cache.entry_count < cache.build_stats.optimizer_calls_plans
        assert cache.unique_plan_count() <= cache.entry_count


class TestAccessCostPhase:
    def test_one_call_per_candidate_plus_heap_call(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        builder = InumCacheBuilder(optimizer, InumBuilderOptions(include_nestloop_plans=False))
        cache = builder.build_plan_cache(join_query)
        candidates = [Index("sales", ["s_customer"]), Index("customers", ["c_id"])]
        optimizer.reset_counters()
        builder.collect_access_costs(join_query, cache, candidates)
        assert cache.build_stats.optimizer_calls_access_costs == len(candidates) + 1
        assert optimizer.call_count == len(candidates) + 1

    def test_heap_costs_recorded_for_every_table(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        cache = InumCacheBuilder(optimizer).build_cache(join_query)
        for table in join_query.tables:
            assert cache.access_costs.has_heap(table)

    def test_candidate_costs_recorded(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        candidates = [Index("sales", ["s_customer"]), Index("customers", ["c_region"])]
        cache = InumCacheBuilder(optimizer).build_cache(join_query, candidates)
        for candidate in candidates:
            assert cache.access_costs.for_index(candidate) is not None

    def test_candidates_on_other_tables_skipped(self, small_catalog, join_query, simple_query):
        optimizer = Optimizer(small_catalog)
        builder = InumCacheBuilder(optimizer)
        cache = builder.build_plan_cache(simple_query)
        optimizer.reset_counters()
        builder.collect_access_costs(
            simple_query, cache, [Index("customers", ["c_region"])]
        )
        # Only the heap call happens: the candidate's table is not in the query.
        assert optimizer.call_count == 1


class TestFullBuild:
    def test_build_cache_is_valid(self, small_catalog, join_query):
        cache = InumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query)
        cache.validate()
        assert cache.entry_count >= 1
        assert cache.build_stats.seconds_total > 0
