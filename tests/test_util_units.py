"""Tests for byte-size helpers."""

import pytest

from repro.util.units import GIB, KIB, MIB, format_bytes, gigabytes, kilobytes, megabytes


class TestConversions:
    def test_kilobytes(self):
        assert kilobytes(1) == 1024
        assert kilobytes(2.5) == 2560

    def test_megabytes(self):
        assert megabytes(1) == MIB
        assert megabytes(0.5) == MIB // 2

    def test_gigabytes(self):
        assert gigabytes(1) == GIB
        assert gigabytes(10) == 10 * GIB

    def test_constants_are_powers_of_1024(self):
        assert MIB == KIB * 1024
        assert GIB == MIB * 1024


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.0 KiB"

    def test_mib(self):
        assert format_bytes(5 * MIB) == "5.0 MiB"

    def test_gib(self):
        assert format_bytes(5 * GIB) == "5.0 GiB"

    def test_fractional_gib(self):
        assert format_bytes(int(1.5 * GIB)) == "1.5 GiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)
