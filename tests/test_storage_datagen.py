"""Tests for synthetic data generation and the Database container."""

import pytest

from repro.catalog import Catalog, Column, ColumnType, ForeignKey, Index, Table, TableStatistics
from repro.storage.datagen import DataGenerator, Database
from repro.util.errors import ExecutionError


@pytest.fixture
def fk_catalog():
    catalog = Catalog("fk")
    parent = Table("parent", [Column("id", ColumnType.BIGINT), Column("attr", ColumnType.INTEGER)],
                   primary_key="id")
    child = Table(
        "child",
        [Column("id", ColumnType.BIGINT), Column("pid", ColumnType.BIGINT),
         Column("value", ColumnType.INTEGER)],
        primary_key="id",
        foreign_keys=[ForeignKey("pid", "parent", "id")],
    )
    catalog.add_table(parent, TableStatistics.uniform(parent, 1000))
    catalog.add_table(child, TableStatistics.uniform(child, 10_000))
    return catalog


class TestDataGenerator:
    def test_row_counts_follow_scale(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.1)
        assert database.relation("parent").row_count == 100
        assert database.relation("child").row_count == 1000

    def test_row_counts_override(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(row_counts={"parent": 5, "child": 7})
        assert database.relation("parent").row_count == 5
        assert database.relation("child").row_count == 7

    def test_foreign_keys_reference_existing_parents(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.05)
        parent_ids = set(database.relation("parent").column_values("id"))
        child_fks = set(database.relation("child").column_values("pid"))
        assert child_fks <= parent_ids

    def test_primary_keys_are_dense_and_unique(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.01)
        ids = database.relation("parent").column_values("id")
        assert sorted(ids) == list(range(1, len(ids) + 1))

    def test_deterministic_across_runs(self, fk_catalog):
        rows_a = DataGenerator(fk_catalog, seed=9).generate(scale=0.01).relation("child").rows()
        rows_b = DataGenerator(fk_catalog, seed=9).generate(scale=0.01).relation("child").rows()
        assert rows_a == rows_b

    def test_different_seeds_differ(self, fk_catalog):
        rows_a = DataGenerator(fk_catalog, seed=1).generate(scale=0.01).relation("child").rows()
        rows_b = DataGenerator(fk_catalog, seed=2).generate(scale=0.01).relation("child").rows()
        assert rows_a != rows_b

    def test_attribute_values_span_full_scale_range(self, fk_catalog):
        """Non-key values keep the catalog's range so predicates keep their selectivity."""
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.05)
        values = database.relation("child").column_values("value")
        full_scale_max = fk_catalog.statistics("child").column("value").max_value
        assert max(values) > len(values)  # larger than the scaled-down row count
        assert max(values) <= full_scale_max


class TestDatabase:
    def test_missing_relation_raises(self, fk_catalog):
        database = Database(fk_catalog)
        with pytest.raises(ExecutionError):
            database.relation("parent")

    def test_build_index_is_cached(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.01)
        index = Index("child", ["pid"])
        first = database.build_index(index)
        second = database.build_index(index)
        assert first is second
        database.drop_indexes()
        assert database.build_index(index) is not first

    def test_analyze_updates_catalog_statistics(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.01)
        database.analyze()
        assert fk_catalog.statistics("child").row_count == database.relation("child").row_count

    def test_table_names(self, fk_catalog):
        database = DataGenerator(fk_catalog, seed=1).generate(scale=0.01)
        assert set(database.table_names()) == {"parent", "child"}
