"""Unit tests for DML statements: AST, parser, preprocessor, maintenance model."""

from __future__ import annotations

import pytest

from repro.catalog.index import Index
from repro.optimizer.maintenance import MaintenanceCostModel, MaintenanceProfile
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfCallCache
from repro.query import (
    DmlKind,
    DmlStatement,
    QueryPreprocessor,
    parse_query,
    parse_statement,
)
from repro.query.ast import ColumnRef, Comparison, Predicate, Query
from repro.util.errors import QueryError

from conftest import build_small_catalog


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


class TestDmlParsing:
    def test_insert_values(self):
        stmt = parse_statement(
            "INSERT INTO sales (s_amount, s_quantity) VALUES (1, 2), (3.5, 4)", name="i"
        )
        assert isinstance(stmt, DmlStatement)
        assert stmt.kind is DmlKind.INSERT
        assert stmt.table == "sales"
        assert stmt.columns == ("s_amount", "s_quantity")
        assert stmt.values == ((1.0, 2.0), (3.5, 4.0))
        assert stmt.rows_hint == 2

    def test_update_with_bare_and_qualified_columns(self):
        stmt = parse_statement(
            "UPDATE sales SET s_amount = 9 WHERE sales.s_quantity > 5 AND s_id <= 100",
            name="u",
        )
        assert stmt.kind is DmlKind.UPDATE
        assert stmt.columns == ("s_amount",)
        assert stmt.set_values == (9.0,)
        assert [str(p.column) for p in stmt.filters] == ["sales.s_quantity", "sales.s_id"]

    def test_delete_with_between(self):
        stmt = parse_statement(
            "DELETE FROM sales WHERE s_amount BETWEEN 10 AND 20", name="d"
        )
        assert stmt.kind is DmlKind.DELETE
        assert stmt.filters[0].op is Comparison.BETWEEN

    def test_select_still_parses_to_query(self):
        stmt = parse_statement("SELECT sales.s_amount FROM sales", name="q")
        assert isinstance(stmt, Query)
        assert not stmt.is_dml

    def test_parse_query_rejects_dml_with_pointer(self):
        with pytest.raises(QueryError, match="parse_statement"):
            parse_query("DELETE FROM sales")

    def test_qualified_column_must_match_target(self):
        with pytest.raises(QueryError, match="does not belong"):
            parse_statement("UPDATE sales SET customers.c_age = 1", name="u")

    def test_dml_where_rejects_joins(self):
        with pytest.raises(QueryError, match="not to another column"):
            parse_statement(
                "DELETE FROM sales WHERE s_customer = customers.c_id", name="d"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QueryError, match="trailing input"):
            parse_statement("DELETE FROM sales WHERE s_id = 1 banana", name="d")

    @pytest.mark.parametrize("sql", [
        "INSERT INTO sales VALUES (1)",                      # no column list
        "INSERT INTO sales (s_amount) VALUES (1, 2)",        # arity mismatch
        "INSERT INTO sales (s_amount, s_amount) VALUES (1, 1)",  # duplicate column
        "UPDATE sales SET",                                  # no assignments
        "UPDATE sales WHERE s_id = 1",                       # missing SET
        "DELETE sales",                                      # missing FROM
        "DELETE FROM",                                       # missing table
    ])
    def test_malformed_dml_raises_query_error(self, sql):
        with pytest.raises(QueryError):
            parse_statement(sql, name="bad")


class TestDmlRoundTrip:
    @pytest.mark.parametrize("sql", [
        "INSERT INTO sales (s_amount, s_quantity) VALUES (1, 2), (3.5, 4)",
        "UPDATE sales SET s_amount = 9 WHERE s_quantity > 5",
        "DELETE FROM sales WHERE s_amount BETWEEN 10 AND 20 AND s_id <> 3",
        "DELETE FROM sales",
        # Extreme literals: str(float(...)) emits a sign or scientific
        # notation, which the tokenizer must read back.
        "INSERT INTO sales (s_amount) VALUES (10000000000000000000)",
        "UPDATE sales SET s_amount = -42.5 WHERE s_quantity > -3",
        "DELETE FROM sales WHERE s_amount BETWEEN 1e-5 AND 2.5e300",
    ])
    def test_to_sql_is_a_fixed_point(self, sql):
        first = parse_statement(sql, name="s")
        second = parse_statement(first.to_sql(), name="s")
        assert second == first
        assert second.to_sql() == first.to_sql()

    def test_non_finite_values_rejected(self):
        with pytest.raises(QueryError, match="finite"):
            DmlStatement(
                name="bad", kind=DmlKind.INSERT, table="sales",
                columns=("s_amount",), values=((float("inf"),),),
            )
        with pytest.raises(QueryError, match="finite"):
            DmlStatement(
                name="bad", kind=DmlKind.UPDATE, table="sales",
                columns=("s_amount",), set_values=(float("nan"),),
            )


# ---------------------------------------------------------------------------
# AST semantics
# ---------------------------------------------------------------------------


class TestDmlStatementSemantics:
    def test_shadow_query_of_update(self):
        stmt = parse_statement(
            "UPDATE sales SET s_amount = 9 WHERE s_quantity > 5", name="u"
        )
        shadow = stmt.shadow_query()
        assert shadow is not None
        assert shadow.tables == ("sales",)
        assert shadow.name == "u"
        assert [str(c) for c in shadow.select_columns] == ["sales.s_amount", "sales.s_quantity"]
        assert shadow.filters == stmt.filters

    def test_insert_and_unfiltered_delete_have_no_shadow(self):
        insert = parse_statement("INSERT INTO sales (s_amount) VALUES (1)", name="i")
        delete = parse_statement("DELETE FROM sales", name="d")
        assert insert.shadow_query() is None
        assert delete.shadow_query() is None

    def test_affects_index_columns(self):
        update = parse_statement("UPDATE sales SET s_amount = 1", name="u")
        insert = parse_statement("INSERT INTO sales (s_quantity) VALUES (1)", name="i")
        delete = parse_statement("DELETE FROM sales", name="d")
        assert update.affects_index_columns(("s_amount", "s_id"))
        assert not update.affects_index_columns(("s_quantity",))
        assert insert.affects_index_columns(("s_quantity",))
        assert insert.affects_index_columns(("s_amount",))
        assert delete.affects_index_columns(("s_amount",))

    def test_filters_must_target_the_statement_table(self):
        with pytest.raises(QueryError, match="cannot join"):
            DmlStatement(
                name="bad", kind=DmlKind.DELETE, table="sales",
                filters=(Predicate(ColumnRef("customers", "c_age"), Comparison.EQ, 1.0),),
            )

    def test_query_surface_compatibility(self):
        stmt = parse_statement(
            "UPDATE sales SET s_amount = 9 WHERE s_quantity > 5", name="u"
        )
        assert stmt.tables == ("sales",)
        assert stmt.table_count == 1
        assert stmt.columns_of("sales") == ["s_amount", "s_quantity"]
        assert stmt.columns_of("customers") == []
        assert stmt.filters_on("sales") == list(stmt.filters)
        assert stmt.is_dml and not Query.is_dml


# ---------------------------------------------------------------------------
# Preprocessor
# ---------------------------------------------------------------------------


class TestDmlPreprocessing:
    def test_valid_statement_passes_and_dedupes_filters(self, small_catalog):
        stmt = parse_statement(
            "DELETE FROM sales WHERE s_id = 1 AND s_id = 1", name="d"
        )
        processed = QueryPreprocessor(small_catalog).preprocess_statement(stmt)
        assert len(processed.filters) == 1
        assert processed.kind is DmlKind.DELETE

    def test_unknown_table_rejected(self, small_catalog):
        stmt = parse_statement("DELETE FROM nowhere WHERE x = 1", name="d")
        with pytest.raises(QueryError, match="unknown table"):
            QueryPreprocessor(small_catalog).preprocess_statement(stmt)

    def test_unknown_column_rejected(self, small_catalog):
        stmt = parse_statement("UPDATE sales SET nope = 1", name="u")
        with pytest.raises(QueryError, match="no column"):
            QueryPreprocessor(small_catalog).preprocess_statement(stmt)

    def test_select_statements_still_normalised(self, small_catalog, join_query):
        processed = QueryPreprocessor(small_catalog).preprocess_statement(join_query)
        assert processed.tables == tuple(sorted(join_query.tables))


# ---------------------------------------------------------------------------
# Maintenance cost model
# ---------------------------------------------------------------------------


class TestMaintenanceCostModel:
    @pytest.fixture
    def model(self):
        return MaintenanceCostModel(build_small_catalog())

    def test_insert_rows_come_from_values(self, model):
        stmt = parse_statement(
            "INSERT INTO sales (s_amount) VALUES (1), (2), (3)", name="i"
        )
        assert model.rows_affected(stmt) == 3.0

    def test_filtered_rows_follow_selectivity(self, model):
        narrow = parse_statement("DELETE FROM sales WHERE s_id = 1", name="d1")
        wide = parse_statement("DELETE FROM sales WHERE s_id > 0", name="d2")
        assert model.rows_affected(narrow) < model.rows_affected(wide)

    def test_update_charges_only_indexes_on_set_columns(self, model):
        stmt = parse_statement("UPDATE sales SET s_amount = 1 WHERE s_id > 0", name="u")
        touched = Index("sales", ["s_amount", "s_id"])
        untouched = Index("sales", ["s_quantity"])
        other_table = Index("customers", ["c_age"])
        assert model.index_maintenance_cost(stmt, touched) > 0.0
        assert model.index_maintenance_cost(stmt, untouched) == 0.0
        assert model.index_maintenance_cost(stmt, other_table) == 0.0

    def test_insert_and_delete_charge_every_index(self, model):
        insert = parse_statement("INSERT INTO sales (s_amount) VALUES (1)", name="i")
        delete = parse_statement("DELETE FROM sales WHERE s_id > 0", name="d")
        index = Index("sales", ["s_quantity"])
        assert model.index_maintenance_cost(insert, index) > 0.0
        assert model.index_maintenance_cost(delete, index) > 0.0

    def test_wider_keys_cost_more_per_row(self, model):
        stmt = parse_statement("DELETE FROM sales WHERE s_id > 0", name="d")
        narrow = Index("sales", ["s_quantity"])
        wide = Index("sales", ["s_quantity", "s_amount", "s_customer", "s_product"])
        assert model.index_maintenance_cost(stmt, wide) >= model.index_maintenance_cost(
            stmt, narrow
        )

    def test_profile_covers_only_charged_candidates(self, model):
        stmt = parse_statement("UPDATE sales SET s_amount = 1 WHERE s_id > 0", name="u")
        touched = Index("sales", ["s_amount"])
        untouched = Index("sales", ["s_quantity"])
        profile = model.profile(stmt, [touched, untouched])
        assert touched.key in profile.per_index
        assert untouched.key not in profile.per_index
        assert profile.cost_for([touched]) > profile.cost_for([untouched])
        assert profile.cost_for([untouched]) == profile.base_cost

    def test_profile_round_trips_through_json(self, model):
        stmt = parse_statement("DELETE FROM sales WHERE s_id > 0", name="d")
        profile = model.profile(stmt, [Index("sales", ["s_amount"])])
        rebuilt = MaintenanceProfile.from_dict(profile.to_dict())
        assert rebuilt.base_cost == profile.base_cost
        assert rebuilt.per_index == profile.per_index
        assert rebuilt.digest() == profile.digest()


class TestWhatIfMaintenanceMemoization:
    def test_repeated_probes_hit_the_memo(self, small_catalog):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        stmt = parse_statement("DELETE FROM sales WHERE s_id > 0", name="d")
        index = Index("sales", ["s_amount"])
        first = cache.maintenance_cost(stmt, index)
        second = cache.maintenance_cost(stmt, index)
        assert first == second > 0.0
        assert cache.statistics.maintenance_misses == 1
        assert cache.statistics.maintenance_hits == 1
        # Optimizer-probe accounting is untouched by maintenance questions.
        assert cache.statistics.hits == cache.statistics.misses == 0

    def test_statement_cost_decomposes(self, small_catalog):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        stmt = parse_statement(
            "UPDATE sales SET s_amount = 1 WHERE s_quantity <= 100", name="u"
        )
        index = Index("sales", ["s_amount", "s_quantity"])
        bare = cache.statement_cost(stmt, [])
        with_index = cache.statement_cost(stmt, [index])
        shadow_bare = cache.cost_with_configuration(stmt.shadow_query(), [])
        shadow_indexed = cache.cost_with_configuration(stmt.shadow_query(), [index])
        maintenance = cache.maintenance_cost(stmt, index)
        base = cache.statement_base_cost(stmt)
        assert bare == pytest.approx(shadow_bare + base)
        assert with_index == pytest.approx(shadow_indexed + base + maintenance)

    def test_select_statement_cost_is_plain_whatif(self, small_catalog, join_query):
        cache = WhatIfCallCache(Optimizer(small_catalog))
        assert cache.statement_cost(join_query, []) == cache.cost_with_configuration(
            join_query, []
        )
