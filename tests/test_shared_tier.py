"""The shared read-only cache tier: N sessions, one copy of the warm state.

Covers the ISSUE 6 acceptance points: a second session over an
equal-but-distinct catalog performs **zero** cache builds (everything is
adopted from the tier), sessions never observe each other's mutable state
(workloads, weights, DML maintenance profiles), and the whole stack stays
well-behaved under real thread concurrency (the CI concurrency-stress job
runs this module under ``PYTHONFAULTHANDLER=1``).
"""

from __future__ import annotations

import threading

from repro.advisor.advisor import AdvisorOptions
from repro.api.serve import _load_catalog_and_workload
from repro.api.session import TuningSession
from repro.api.tier import SharedCacheTier, TierNamespace
from repro.inum.cache import InumCache
from repro.inum.serialization import CacheStore, PageCache
from repro.query.parser import parse_statement


def _session(tier, catalog_name="tpch", seed=7, **options):
    catalog, workload = _load_catalog_and_workload(catalog_name, seed)
    return TuningSession(
        catalog,
        workload,
        options=AdvisorOptions(**options) if options else None,
        shared_tier=tier,
    )


class TestSharedBuilds:
    def test_second_session_builds_nothing(self):
        """Distinct sessions over equal catalogs share every cache build."""
        tier = SharedCacheTier()
        first = _session(tier)
        second = _session(tier)

        cold = first.recommend()
        assert cold.caches_built > 0
        assert cold.caches_shared == 0

        warm = second.recommend()
        assert warm.caches_built == 0, "second session should adopt, not build"
        assert warm.caches_from_store == 0
        assert warm.caches_shared == cold.caches_built

        # Identical inputs -> identical outputs, through the shared objects.
        assert [i.key for i in warm.result.selected_indexes] == [
            i.key for i in cold.result.selected_indexes
        ]
        assert warm.result.workload_cost_after == cold.result.workload_cost_after

    def test_tier_statistics_account_for_the_sharing(self):
        tier = SharedCacheTier()
        first = _session(tier)
        first.recommend()
        second = _session(tier)
        second.recommend()

        stats = tier.statistics_dict()
        assert stats["catalogs"] == 1
        assert stats["sessions_attached"] == 2
        assert stats["cache_promotions"] == first.statistics.caches_built
        assert stats["cache_hits"] == second.statistics.caches_shared
        # Compiled engines were published once and adopted once.
        assert stats["engine_promotions"] > 0
        assert stats["engine_hits"] >= stats["engine_promotions"]

    def test_different_catalogs_use_different_namespaces(self):
        tier = SharedCacheTier()
        tpch = _session(tier, "tpch")
        star = _session(tier, "star")
        tpch.recommend()
        star.recommend()
        assert tier.namespace_count == 2
        assert star.statistics.caches_shared == 0
        assert star.statistics.caches_built > 0


class TestSessionIsolation:
    def test_weights_do_not_leak_between_sessions(self):
        """A tenant reweighting its workload must not move its neighbour."""
        tier = SharedCacheTier()
        first = _session(tier)
        second = _session(tier)
        baseline = first.recommend()

        name = second.queries[0].name
        second.set_weights({name: 25.0})
        second.recommend()

        again = first.recommend()
        assert again.result.workload_cost_after == baseline.result.workload_cost_after
        assert again.caches_built == 0

    def test_workload_mutations_do_not_leak(self):
        tier = SharedCacheTier()
        first = _session(tier)
        second = _session(tier)
        first.recommend()
        before = len(first.queries)

        second.add_queries([
            parse_statement(
                "SELECT orders.o_orderkey FROM orders "
                "WHERE orders.o_totalprice > 1000",
                name="tenant2_only",
            )
        ])
        second.recommend()

        assert len(first.queries) == before
        assert "tenant2_only" not in first.query_names

    def test_dml_maintenance_is_applied_on_a_detached_copy(self):
        """Tier-shared DML caches are never mutated by a session's profile.

        Both sessions tune the same mixed workload but with different DML
        weights, so their candidate pools (and maintenance profiles) can
        diverge; the shared cache object must keep whatever state it was
        published with.
        """
        tier = SharedCacheTier()
        dml_sql = (
            "INSERT INTO orders (o_orderkey, o_custkey, o_totalprice) "
            "VALUES (1, 2, 3.0)"
        )
        first = _session(tier)
        first.add_queries([parse_statement(dml_sql, name="feed")])
        cold = first.recommend()
        assert cold.caches_built > 0

        namespace = first.tier_namespace
        shared_maintenance = {
            key: cache.maintenance
            for key, cache in namespace._caches.items()
        }

        second = _session(tier)
        second.add_queries([parse_statement(dml_sql, name="feed")])
        second.set_weights({"feed": 50.0})
        warm = second.recommend()
        assert warm.caches_built == 0
        assert warm.caches_shared == cold.caches_built

        # The published objects kept exactly the maintenance state they
        # were promoted with: the second tenant worked on detached copies.
        for key, cache in namespace._caches.items():
            assert cache.maintenance is shared_maintenance[key]

        # And the first session still reproduces its own answer.
        repeat = first.recommend()
        assert repeat.result.workload_cost_after == cold.result.workload_cost_after


class TestDetachedCopy:
    def test_detached_copy_shares_entries_but_not_maintenance(self):
        query = parse_statement(
            "SELECT orders.o_orderkey FROM orders", name="q"
        )
        cache = InumCache(query)
        clone = cache.detached_copy()
        assert clone.entries is cache.entries
        assert clone.access_costs is cache.access_costs
        clone.maintenance = object()
        assert cache.maintenance is None


class TestTierInternals:
    def test_promotion_is_first_build_wins(self):
        namespace = TierNamespace("fp")
        query = parse_statement("SELECT orders.o_orderkey FROM orders", name="q")
        first, second = InumCache(query), InumCache(query)
        assert namespace.promote_caches({("k",): first}) == 1
        assert namespace.promote_caches({("k",): second}) == 0
        assert namespace.lookup_cache(("k",)) is first

    def test_cache_bound_is_enforced(self):
        namespace = TierNamespace("fp", max_caches=4)
        query = parse_statement("SELECT orders.o_orderkey FROM orders", name="q")
        for position in range(10):
            namespace.promote_caches({("k", position): InumCache(query)})
        assert namespace.cache_count <= 4

    def test_engine_map_deletion_is_local(self):
        """One session pruning its engine pool cannot evict for everyone."""
        namespace = TierNamespace("fp")
        first = namespace.engine_map()
        second = namespace.engine_map()
        engine = object()
        first[("cache-1", "numpy")] = engine
        assert second.get(("cache-1", "numpy")) is engine
        del second[("cache-1", "numpy")]
        assert ("cache-1", "numpy") not in second  # local view only
        assert first.get(("cache-1", "numpy")) is engine
        assert namespace.lookup_engine(("cache-1", "numpy")) is engine

    def test_store_page_cache_is_shared(self, tmp_path):
        """Two stores over one PageCache parse each saved file once."""
        catalog, workload = _load_catalog_and_workload("tpch", 7)
        pages = PageCache()
        writer = CacheStore(tmp_path, catalog, page_cache=pages)
        reader = CacheStore(tmp_path, catalog, page_cache=pages)

        session = TuningSession(catalog, workload)
        query = workload[0]
        candidates = session._generator.for_query(query)
        cache = session.build_query_cache(query, candidates=candidates)
        writer.save(query, cache, "pinum", list(candidates))

        assert writer.load(query, "pinum", list(candidates)) is not None
        misses_after_first = pages.misses
        assert reader.load(query, "pinum", list(candidates)) is not None
        assert pages.misses == misses_after_first, "second parse should be a page hit"
        assert pages.hits >= 1

    def test_store_for_returns_one_store_per_directory(self, tmp_path):
        tier = SharedCacheTier()
        catalog, _ = _load_catalog_and_workload("tpch", 7)
        assert tier.store_for(tmp_path, catalog) is tier.store_for(tmp_path, catalog)


class TestThreadedStress:
    def test_concurrent_sessions_share_and_agree(self):
        """Real threads, one tier: every session converges on one answer.

        This is the CI concurrency-stress entry point: racing sessions must
        neither crash, nor double-build more than once per cache (the
        first-build-wins window allows concurrent *initial* builds), nor
        disagree on the recommendation.
        """
        tier = SharedCacheTier()
        results: list = []
        errors: list = []
        barrier = threading.Barrier(4)

        def tenant(position: int) -> None:
            try:
                session = _session(tier)
                barrier.wait(timeout=30)
                response = session.recommend()
                if position % 2:
                    session.set_weights({session.queries[0].name: 3.0 + position})
                    session.recommend()
                results.append(
                    (response.result.workload_cost_after,
                     [i.key for i in response.result.selected_indexes])
                )
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=tenant, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == 4
        assert len({(cost, tuple(picks)) for cost, picks in results}) == 1

        stats = tier.statistics_dict()
        # First-build-wins: racing initial builds may each construct, but
        # the tier publishes one winner per key.
        namespace = tier.namespaces()[0]
        assert stats["caches_published"] == namespace.cache_count
        assert stats["sessions_attached"] == 4
