"""Tests for the branch-and-bound BIP solver: exactness, anytime behaviour.

The ground truth is :func:`solve_by_enumeration` -- on every instance small
enough to enumerate, branch and bound must return exactly the optimal
objective and prove it (gap 0).  On any instance, interrupting the solver
must still return a selection no worse than the lazy-greedy warm start,
with an honestly reported gap.
"""

from __future__ import annotations

import random

import pytest

from repro.advisor import CandidateGenerator
from repro.advisor.benefit import CacheBackedWorkloadCostModel
from repro.advisor.ilp.formulation import build_formulation
from repro.advisor.ilp.solver import (
    BranchAndBoundSolver,
    IlpSolverOptions,
    solve_by_enumeration,
)
from repro.advisor.lazy_greedy import LazyGreedySelector
from repro.optimizer import Optimizer
from repro.util.errors import AdvisorError
from repro.util.units import gigabytes


def _instance(star_workload, rng, query_count=5, candidate_count=12, mixed=False):
    catalog = star_workload.catalog()
    if mixed:
        workload = star_workload.mixed(read_fraction=0.6)
        statements = workload.statements
        weights = workload.weights
        reads = [s for s in statements if not s.is_dml]
    else:
        statements = rng.sample(star_workload.queries(), query_count)
        weights = None
        reads = statements
    pool = CandidateGenerator(catalog).for_workload(reads)
    candidates = rng.sample(pool, min(candidate_count, len(pool)))
    model = CacheBackedWorkloadCostModel(
        Optimizer(catalog), statements, candidates, weights=weights
    )
    budget = gigabytes(rng.choice([1, 2, 3, 5]))
    formulation = build_formulation(model, catalog, candidates, budget)
    warm_steps = LazyGreedySelector(catalog, model, budget).select(candidates)
    warm = formulation.selection_of([step.chosen for step in warm_steps])
    return formulation, warm


class TestExactness:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_matches_enumeration_read_only(self, star_workload, seed):
        rng = random.Random(seed)
        formulation, warm = _instance(star_workload, rng)
        truth = solve_by_enumeration(formulation)
        solution = BranchAndBoundSolver(formulation).solve(warm, "lazy-greedy")
        assert solution.objective == pytest.approx(truth.objective, rel=1e-9)
        assert solution.proved_optimal
        assert solution.optimality_gap == 0.0
        assert formulation.fits(solution.selection)

    @pytest.mark.parametrize("seed", [5, 19])
    def test_matches_enumeration_mixed(self, star_workload, seed):
        rng = random.Random(seed)
        formulation, warm = _instance(star_workload, rng, mixed=True, candidate_count=10)
        truth = solve_by_enumeration(formulation)
        solution = BranchAndBoundSolver(formulation).solve(warm, "lazy-greedy")
        assert solution.objective == pytest.approx(truth.objective, rel=1e-9)
        assert solution.proved_optimal
        assert formulation.fits(solution.selection)

    def test_never_worse_than_warm_start(self, star_workload):
        rng = random.Random(41)
        for _ in range(3):
            formulation, warm = _instance(star_workload, rng, candidate_count=16)
            solution = BranchAndBoundSolver(
                formulation, IlpSolverOptions(time_limit=2.0)
            ).solve(warm, "lazy-greedy")
            assert solution.objective <= formulation.cost(warm) + 1e-9

    def test_empty_candidate_set(self, star_workload):
        catalog = star_workload.catalog()
        queries = star_workload.queries()[:2]
        model = CacheBackedWorkloadCostModel(Optimizer(catalog), queries, [])
        formulation = build_formulation(model, catalog, [], gigabytes(1))
        solution = BranchAndBoundSolver(formulation).solve(0, "lazy-greedy")
        assert solution.selection == 0
        assert solution.proved_optimal
        assert solution.objective == pytest.approx(
            model.weighted_total(model.per_query_costs([])), rel=1e-9
        )


class TestAnytime:
    def test_zero_time_limit_returns_warm_start_with_valid_gap(self, star_workload):
        rng = random.Random(13)
        formulation, warm = _instance(star_workload, rng, candidate_count=20)
        solution = BranchAndBoundSolver(
            formulation, IlpSolverOptions(time_limit=0.0)
        ).solve(warm, "lazy-greedy")
        # Nothing explored: the warm incumbent (or the root dive, if it beat
        # it for free) comes back, and the gap derives from the root bound.
        assert solution.objective <= formulation.cost(warm) + 1e-9
        assert 0.0 <= solution.optimality_gap <= 1.0
        assert solution.best_bound <= solution.objective + 1e-9
        assert solution.status in ("time_limit", "optimal")

    def test_node_limit_reports_gap(self, star_workload):
        rng = random.Random(37)
        formulation, warm = _instance(star_workload, rng, candidate_count=20)
        solution = BranchAndBoundSolver(
            formulation, IlpSolverOptions(max_nodes=1)
        ).solve(warm, "lazy-greedy")
        assert solution.status in ("node_limit", "optimal")
        assert 0.0 <= solution.optimality_gap <= 1.0

    # Seeds chosen so the 10% run actually settles on a sub-optimal
    # selection (exercising the proof-floor accounting, not just the happy
    # path where the warm start was optimal anyway).
    @pytest.mark.parametrize("seed", [0, 10, 20])
    def test_relaxed_gap_stops_early_but_stays_honest(self, star_workload, seed):
        rng = random.Random(seed)
        formulation, warm = _instance(star_workload, rng, candidate_count=16)
        exact = BranchAndBoundSolver(formulation).solve(warm, "lazy-greedy")
        relaxed = BranchAndBoundSolver(
            formulation, IlpSolverOptions(gap=0.10)
        ).solve(warm, "lazy-greedy")
        assert relaxed.nodes_explored <= exact.nodes_explored
        # The proven gap guarantees the relaxed answer is within 10 % of the
        # true optimum.
        assert relaxed.objective <= exact.objective * 1.10 + 1e-9
        assert relaxed.optimality_gap <= 0.10 + 1e-12
        # The reported proof must *cover* the true distance to the optimum:
        # nodes discarded against the gap-relaxed threshold still count
        # toward the proof floor, so a gap-limited run may never claim
        # "proved optimal" while sitting above the true optimum.
        if relaxed.objective > exact.objective * (1 + 1e-9):
            true_gap = (relaxed.objective - exact.objective) / relaxed.objective
            assert relaxed.optimality_gap >= true_gap - 1e-12
            assert not relaxed.proved_optimal
        assert relaxed.best_bound <= exact.objective * (1 + 1e-9)


class TestValidation:
    def test_solver_options_validate(self):
        with pytest.raises(AdvisorError, match="ilp_gap"):
            IlpSolverOptions(gap=-0.1)
        with pytest.raises(AdvisorError, match="ilp_gap"):
            IlpSolverOptions(gap=float("inf"))
        with pytest.raises(AdvisorError, match="ilp_time_limit"):
            IlpSolverOptions(time_limit=-1.0)
        with pytest.raises(AdvisorError, match="node limit"):
            IlpSolverOptions(max_nodes=0)
        assert IlpSolverOptions(time_limit=None).time_limit is None

    def test_overweight_warm_start_rejected(self, star_workload):
        rng = random.Random(3)
        formulation, _ = _instance(star_workload, rng)
        too_big = (1 << formulation.candidate_count) - 1
        if formulation.fits(too_big):
            pytest.skip("every candidate fits this budget draw")
        with pytest.raises(AdvisorError, match="space budget"):
            BranchAndBoundSolver(formulation).solve(too_big)

    def test_enumeration_refuses_large_instances(self, star_workload):
        catalog = star_workload.catalog()
        queries = star_workload.queries()[:3]
        candidates = CandidateGenerator(catalog).for_workload(queries)[:30]
        model = CacheBackedWorkloadCostModel(Optimizer(catalog), queries, candidates)
        formulation = build_formulation(model, catalog, candidates, gigabytes(5))
        with pytest.raises(AdvisorError, match="enumeration"):
            solve_by_enumeration(formulation)
