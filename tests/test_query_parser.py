"""Tests for the SQL parser."""

import pytest

from repro.query.ast import Comparison
from repro.query.parser import parse_query
from repro.util.errors import QueryError


class TestBasicParsing:
    def test_select_from(self):
        query = parse_query("SELECT t.a, t.b FROM t")
        assert query.tables == ("t",)
        assert [str(c) for c in query.select_columns] == ["t.a", "t.b"]

    def test_case_insensitive_keywords(self):
        query = parse_query("select t.a from t where t.a > 5 order by t.a desc")
        assert query.filters[0].op is Comparison.GT
        assert query.order_by[0].descending

    def test_filter_operators(self):
        query = parse_query(
            "SELECT t.a FROM t WHERE t.a <= 3 AND t.b <> 4 AND t.c >= 1 AND t.d < 9 AND t.e = 2"
        )
        ops = [f.op for f in query.filters]
        assert ops == [Comparison.LE, Comparison.NE, Comparison.GE, Comparison.LT, Comparison.EQ]

    def test_between(self):
        query = parse_query("SELECT t.a FROM t WHERE t.a BETWEEN 5 AND 10")
        predicate = query.filters[0]
        assert predicate.op is Comparison.BETWEEN
        assert (predicate.value, predicate.value2) == (5, 10)

    def test_between_mixed_with_conjunction(self):
        query = parse_query(
            "SELECT t.a FROM t, u WHERE t.a BETWEEN 5 AND 10 AND t.id = u.tid"
        )
        assert len(query.filters) == 1
        assert len(query.joins) == 1

    def test_join_predicate(self):
        query = parse_query("SELECT a.x FROM a, b WHERE a.id = b.a_id")
        assert len(query.joins) == 1
        assert query.joins[0].tables == frozenset({"a", "b"})

    def test_group_by_and_aggregates(self):
        query = parse_query(
            "SELECT t.region, sum(t.amount), count(*) FROM t GROUP BY t.region"
        )
        assert len(query.aggregates) == 2
        assert query.group_by[0].column == "region"

    def test_order_by_multiple(self):
        query = parse_query("SELECT t.a, t.b FROM t ORDER BY t.a ASC, t.b DESC")
        assert [item.descending for item in query.order_by] == [False, True]

    def test_floats(self):
        query = parse_query("SELECT t.a FROM t WHERE t.a < 3.5")
        assert query.filters[0].value == pytest.approx(3.5)


class TestRoundTrip:
    def test_to_sql_reparses(self, join_query):
        reparsed = parse_query(join_query.to_sql(), name=join_query.name)
        assert set(reparsed.tables) == set(join_query.tables)
        assert len(reparsed.joins) == len(join_query.joins)
        assert len(reparsed.filters) == len(join_query.filters)
        assert len(reparsed.group_by) == len(join_query.group_by)
        assert len(reparsed.order_by) == len(join_query.order_by)


class TestErrors:
    def test_empty_text(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_missing_from(self):
        with pytest.raises(QueryError):
            parse_query("SELECT t.a")

    def test_unqualified_column_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT a FROM t")

    def test_trailing_garbage(self):
        with pytest.raises(QueryError):
            parse_query("SELECT t.a FROM t LIMIT 5")

    def test_non_equi_join_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT a.x FROM a, b WHERE a.id < b.a_id")

    def test_unexpected_character(self):
        with pytest.raises(QueryError):
            parse_query("SELECT t.a FROM t WHERE t.a = 'text'")

    def test_unbalanced_aggregate(self):
        with pytest.raises(QueryError):
            parse_query("SELECT sum(t.a FROM t")
