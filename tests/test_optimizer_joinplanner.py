"""Tests for the DP join planner, its keep-all-IOC mode and subsumption pruning."""

import pytest

from repro.catalog.index import Index
from repro.optimizer.access_paths import AccessPathCollector
from repro.optimizer.cost_model import CostModel
from repro.optimizer.hooks import OptimizerHooks
from repro.optimizer.interesting_orders import enumerate_combinations, interesting_orders_by_table
from repro.optimizer.joinplanner import JoinPlanner, normalized_ioc, prune_subsumed_plans
from repro.optimizer.selectivity import SelectivityEstimator
from repro.query import QueryBuilder
from repro.util.errors import PlanningError


def make_planner(catalog, enable_nestloop=True):
    selectivity = SelectivityEstimator(catalog)
    return (
        JoinPlanner(CostModel(), selectivity, enable_nestloop),
        AccessPathCollector(catalog, CostModel(), selectivity),
    )


class TestBasicPlanning:
    def test_single_table_query(self, small_catalog, simple_query):
        planner, collector = make_planner(small_catalog)
        result = planner.plan(simple_query, collector.collect(simple_query))
        assert result.candidates
        assert result.candidates[0].tables == frozenset({"sales"})

    def test_join_query_covers_all_tables(self, small_catalog, join_query):
        planner, collector = make_planner(small_catalog)
        result = planner.plan(join_query, collector.collect(join_query))
        best = min(result.candidates, key=lambda p: p.total_cost)
        assert best.tables == frozenset(join_query.tables)

    def test_missing_access_paths_rejected(self, small_catalog, join_query):
        planner, _ = make_planner(small_catalog)
        with pytest.raises(PlanningError):
            planner.plan(join_query, {})

    def test_disconnected_graph_rejected(self, small_catalog):
        query = (
            QueryBuilder("disconnected")
            .select("sales.s_amount", "products.p_price")
            .from_tables("sales", "products")
            .build()
        )
        planner, collector = make_planner(small_catalog)
        with pytest.raises(PlanningError):
            planner.plan(query, collector.collect(query))

    def test_costs_are_positive_and_finite(self, small_catalog, join_query):
        planner, collector = make_planner(small_catalog)
        result = planner.plan(join_query, collector.collect(join_query))
        for plan in result.candidates:
            assert plan.total_cost > 0
            assert plan.total_cost < float("inf")


class TestJoinMethods:
    def test_nestloop_disabled_removes_nested_loops(self, small_catalog, join_query):
        small_catalog.add_index(Index("customers", ["c_id"]))
        small_catalog.add_index(Index("products", ["p_id"]))
        planner, collector = make_planner(small_catalog, enable_nestloop=False)
        result = planner.plan(join_query, collector.collect(join_query))
        assert all(not plan.uses_nested_loop() for plan in result.candidates)

    def test_nestloop_used_when_beneficial(self, small_catalog):
        """A selective outer and an index on the inner join column favour NLJ."""
        small_catalog.add_index(Index("sales", ["s_customer"]))
        query = (
            QueryBuilder("selective")
            .select("sales.s_amount")
            .join("sales.s_customer", "customers.c_id")
            .where_between("customers.c_age", 1, 50)
            .build()
        )
        planner, collector = make_planner(small_catalog, enable_nestloop=True)
        result = planner.plan(query, collector.collect(query))
        best = min(result.candidates, key=lambda p: p.total_cost)
        assert best.uses_nested_loop()

    def test_enabling_nestloop_never_hurts(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        planner_on, collector = make_planner(small_catalog, enable_nestloop=True)
        planner_off, _ = make_planner(small_catalog, enable_nestloop=False)
        paths = collector.collect(join_query)
        best_on = min(p.total_cost for p in planner_on.plan(join_query, paths).candidates)
        best_off = min(p.total_cost for p in planner_off.plan(join_query, paths).candidates)
        assert best_on <= best_off + 1e-6


class TestKeepAllIocPlans:
    def _hooked(self, subsumption=False):
        return OptimizerHooks(keep_all_ioc_plans=True, subsumption_pruning=subsumption)

    def test_ioc_plans_populated(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        planner, collector = make_planner(small_catalog)
        result = planner.plan(join_query, collector.collect(join_query), self._hooked())
        assert len(result.ioc_plans) > 1
        # The empty combination (all sequential scans) must always be present.
        empty = [ioc for ioc in result.ioc_plans if ioc.order_count == 0]
        assert empty

    def test_ioc_plans_are_subset_of_enumeration(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        small_catalog.add_index(Index("customers", ["c_region"]))
        planner, collector = make_planner(small_catalog)
        result = planner.plan(join_query, collector.collect(join_query), self._hooked())
        valid = set(enumerate_combinations(join_query))
        assert set(result.ioc_plans) <= valid

    def test_each_ioc_plan_requires_its_ioc(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        planner, collector = make_planner(small_catalog)
        result = planner.plan(join_query, collector.collect(join_query), self._hooked())
        orders = interesting_orders_by_table(join_query)
        for ioc, plan in result.ioc_plans.items():
            assert normalized_ioc(plan, orders) == ioc

    def test_best_plan_unchanged_by_hook(self, small_catalog, join_query):
        """Keeping extra plans must not change which plan is cheapest."""
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        planner, collector = make_planner(small_catalog)
        paths = collector.collect(join_query)
        plain_best = min(p.total_cost for p in planner.plan(join_query, paths).candidates)
        hooked_best = min(
            p.total_cost for p in planner.plan(join_query, paths, self._hooked()).candidates
        )
        assert hooked_best == pytest.approx(plain_best, rel=1e-9)

    def test_subsumption_pruning_reduces_plan_count(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        small_catalog.add_index(Index("customers", ["c_region"]))
        small_catalog.add_index(Index("products", ["p_id"]))
        planner, collector = make_planner(small_catalog)
        paths = collector.collect(join_query)
        unpruned = planner.plan(join_query, paths, self._hooked(subsumption=False))
        pruned = planner.plan(join_query, paths, self._hooked(subsumption=True))
        assert len(pruned.ioc_plans) <= len(unpruned.ioc_plans)


class TestSubsumptionRule:
    def test_prunes_more_expensive_superset(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        planner, collector = make_planner(small_catalog)
        hooks = OptimizerHooks(keep_all_ioc_plans=True, subsumption_pruning=False)
        result = planner.plan(join_query, collector.collect(join_query), hooks)
        pruned = prune_subsumed_plans(result.ioc_plans)
        # Check the rule directly: no surviving plan is dominated.
        for ioc_b, plan_b in pruned.items():
            for ioc_a, plan_a in pruned.items():
                if ioc_a is ioc_b:
                    continue
                assert not (
                    ioc_a.is_subset_of(ioc_b) and plan_a.total_cost < plan_b.total_cost
                )

    def test_empty_ioc_never_pruned(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        planner, collector = make_planner(small_catalog)
        hooks = OptimizerHooks(keep_all_ioc_plans=True, subsumption_pruning=True)
        result = planner.plan(join_query, collector.collect(join_query), hooks)
        assert any(ioc.order_count == 0 for ioc in result.ioc_plans)
