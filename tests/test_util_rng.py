"""Tests for the deterministic RNG wrapper."""

import pytest

from repro.util.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(1)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_different_seed_different_sequence(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]

    def test_derive_is_stable(self):
        a = DeterministicRNG(42).derive("queries")
        b = DeterministicRNG(42).derive("queries")
        assert a.seed == b.seed
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_derive_independent_of_parent_consumption(self):
        parent_a = DeterministicRNG(42)
        parent_b = DeterministicRNG(42)
        parent_b.randint(0, 100)  # consume some randomness
        assert parent_a.derive("x").seed == parent_b.derive("x").seed

    def test_derive_different_labels_differ(self):
        parent = DeterministicRNG(42)
        assert parent.derive("a").seed != parent.derive("b").seed


class TestSampling:
    def test_choice_from_empty_raises(self):
        with pytest.raises(ValueError):
            DeterministicRNG(1).choice([])

    def test_choice_returns_member(self):
        rng = DeterministicRNG(1)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items

    def test_sample_clamps_k(self):
        rng = DeterministicRNG(1)
        assert sorted(rng.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_sample_distinct(self):
        rng = DeterministicRNG(1)
        picked = rng.sample(list(range(100)), 20)
        assert len(set(picked)) == 20

    def test_shuffle_does_not_mutate_input(self):
        rng = DeterministicRNG(1)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffle(original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_uniform_within_bounds(self):
        rng = DeterministicRNG(1)
        for _ in range(100):
            value = rng.uniform(5.0, 6.0)
            assert 5.0 <= value <= 6.0
