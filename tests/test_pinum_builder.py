"""Tests for the PINUM cache builder: one (or two) calls fill the whole cache."""

import pytest

from repro.catalog.index import Index
from repro.inum import AtomicConfiguration, InumCacheBuilder, InumCostModel
from repro.optimizer import Optimizer
from repro.optimizer.interesting_orders import combination_count
from repro.pinum import PinumBuilderOptions, PinumCacheBuilder, PinumCostModel
from repro.pinum.cache_builder import probing_index_set


@pytest.fixture
def candidates():
    return [
        Index("sales", ["s_customer"]),
        Index("sales", ["s_customer", "s_amount", "s_product"]),
        Index("customers", ["c_id"]),
        Index("customers", ["c_region", "c_id"]),
        Index("products", ["p_id"]),
        Index("products", ["p_category", "p_id", "p_price"]),
    ]


class TestProbingIndexSet:
    def test_one_index_per_interesting_order(self, join_query):
        indexes = probing_index_set(join_query)
        assert all(len(index.columns) == 1 for index in indexes)
        tables = {index.table for index in indexes}
        assert tables <= set(join_query.tables)
        # sales has two join columns, customers has a join + group column.
        assert len([i for i in indexes if i.table == "sales"]) == 2
        assert len([i for i in indexes if i.table == "customers"]) == 2


class TestCallCounts:
    def test_plan_cache_uses_two_calls_by_default(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        cache = PinumCacheBuilder(optimizer).build_plan_cache(join_query)
        assert cache.build_stats.optimizer_calls_plans == 2
        assert optimizer.call_count == 2

    def test_nestloop_calls_zero(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        builder = PinumCacheBuilder(optimizer, PinumBuilderOptions(nestloop_calls=0))
        cache = builder.build_plan_cache(join_query)
        assert cache.build_stats.optimizer_calls_plans == 1

    def test_full_build_uses_three_calls(self, small_catalog, join_query, candidates):
        optimizer = Optimizer(small_catalog)
        cache = PinumCacheBuilder(optimizer).build_cache(join_query, candidates)
        assert cache.build_stats.optimizer_calls_total == 3

    def test_access_cost_collection_optional(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        builder = PinumCacheBuilder(
            optimizer, PinumBuilderOptions(collect_access_costs=False, nestloop_calls=0)
        )
        with pytest.raises(Exception):
            builder.build_cache(join_query)  # validation fails without heap costs

    def test_orders_of_magnitude_fewer_calls_than_inum(self, small_catalog, join_query, candidates):
        """The paper's headline: PINUM needs a constant number of calls."""
        optimizer = Optimizer(small_catalog)
        pinum_cache = PinumCacheBuilder(optimizer).build_cache(join_query, candidates)
        inum_cache = InumCacheBuilder(optimizer).build_cache(join_query, candidates)
        assert (
            pinum_cache.build_stats.optimizer_calls_total
            < inum_cache.build_stats.optimizer_calls_total / 5
        )
        assert inum_cache.build_stats.optimizer_calls_plans >= combination_count(join_query)


class TestCacheContents:
    def test_cache_validates(self, small_catalog, join_query, candidates):
        cache = PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
        cache.validate()
        assert cache.entry_count >= 1

    def test_all_candidate_access_costs_collected(self, small_catalog, join_query, candidates):
        cache = PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
        for candidate in candidates:
            assert cache.access_costs.for_index(candidate) is not None

    def test_empty_order_entry_always_present(self, small_catalog, join_query, candidates):
        cache = PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
        assert any(entry.ioc.order_count == 0 for entry in cache.entries)

    def test_subsumption_pruning_shrinks_cache(self, small_catalog, join_query, candidates):
        pruned = PinumCacheBuilder(
            Optimizer(small_catalog), PinumBuilderOptions(subsumption_pruning=True)
        ).build_cache(join_query, candidates)
        unpruned = PinumCacheBuilder(
            Optimizer(small_catalog), PinumBuilderOptions(subsumption_pruning=False)
        ).build_cache(join_query, candidates)
        assert pruned.entry_count <= unpruned.entry_count

    def test_nestloop_variants_cached(self, small_catalog, join_query, candidates):
        cache = PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
        sources = {entry.source for entry in cache.entries}
        assert sources == {"pinum"}
        # At least one entry may use nested loops (selective probe available);
        # if none does, the estimation still works, so just sanity-check types.
        assert all(isinstance(entry.uses_nestloop, bool) for entry in cache.entries)


class TestEquivalenceWithInum:
    def test_same_estimates_as_inum_cache(self, small_catalog, join_query, candidates):
        """PINUM fills the same cache, so estimates must agree closely."""
        optimizer = Optimizer(small_catalog)
        pinum_model = PinumCostModel(
            PinumCacheBuilder(optimizer).build_cache(join_query, candidates)
        )
        inum_model = InumCostModel(
            InumCacheBuilder(optimizer).build_cache(join_query, candidates)
        )
        configurations = [
            AtomicConfiguration([]),
            AtomicConfiguration([candidates[0], candidates[2]]),
            AtomicConfiguration([candidates[1], candidates[3], candidates[5]]),
        ]
        for configuration in configurations:
            assert pinum_model.estimate(configuration) == pytest.approx(
                inum_model.estimate(configuration), rel=0.1
            )

    def test_build_bookkeeping_exposed(self, small_catalog, join_query, candidates):
        model = PinumCostModel(
            PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
        )
        assert model.build_optimizer_calls == 3
        assert model.build_seconds > 0
