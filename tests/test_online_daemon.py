"""Tests for the online self-tuning daemon (repro.online.daemon)."""

from __future__ import annotations

import json

import pytest

from conftest import build_small_catalog
from repro.advisor import AdvisorOptions
from repro.api.session import TuningSession
from repro.online import MemoryStatementSource, OnlineTuner, OnlineTunerConfig
from repro.query.parser import parse_statement
from repro.util.errors import AdvisorError
from repro.workloads.tpch_like import TpchLikeWorkload, build_tpch_like_catalog
from repro.workloads.trace import TracePhase, emit_trace

A = "SELECT customers.c_age FROM customers WHERE customers.c_age > 30"
B = "SELECT products.p_price FROM products WHERE products.p_price < 50"
C = "SELECT customers.c_region FROM customers WHERE customers.c_region = 3"


def _statements(*sqls):
    return [parse_statement(sql) for sql in sqls]


def make_tuner(window=10, high=0.35, low=0.15, horizon=10_000, clock=None, **config_kwargs):
    session = TuningSession(
        build_small_catalog(),
        [],
        options=AdvisorOptions(candidate_policy="per_query", max_candidates=12),
    )
    source = MemoryStatementSource()
    config = OnlineTunerConfig(
        window_statements=window,
        drift_high_water=high,
        drift_low_water=low,
        horizon_statements=horizon,
        **config_kwargs,
    )
    tuner_kwargs = {} if clock is None else {"clock": clock}
    return OnlineTuner(session, source, config, **tuner_kwargs), source


class TestBootstrap:
    def test_bootstrap_fires_when_the_window_fills(self):
        tuner, source = make_tuner(window=10)
        source.feed(_statements(*([A] * 5 + [B] * 4)))
        assert tuner.poll() == []  # 9 statements: not full yet
        assert not tuner.statistics.bootstrapped
        source.feed(_statements(B))
        decisions = tuner.poll()
        assert [d.kind for d in decisions] == ["bootstrap"]
        decision = decisions[0]
        assert decision.verdict == "bootstrap"
        assert decision.accepted
        assert decision.new_templates == 2
        assert decision.caches_built == decision.new_templates
        assert tuner.statistics.bootstrapped
        # The bootstrap is the initial tune, not a re-tune.
        assert tuner.retunes_triggered == 0
        assert tuner.session.statistics.retunes_accepted == 0
        # The daemon owns the session workload now: exactly the templates.
        assert len(tuner.session.queries) == 2
        assert all(name.startswith("t_") for name in tuner.session.query_names)


class TestDriftRetune:
    def test_stationary_traffic_never_retunes(self):
        tuner, source = make_tuner(window=10)
        for _ in range(6):
            source.feed(_statements(*([A] * 6 + [B] * 4)))
            tuner.poll()
        assert tuner.detector.fires == 0
        assert tuner.retunes_triggered == 0
        assert tuner.session.statistics.recommend_calls == 1  # bootstrap only

    def test_phase_change_retunes_exactly_once_with_delta_builds(self):
        tuner, source = make_tuner(window=10, high=0.35, low=0.15)
        source.feed(_statements(*([A] * 6 + [B] * 4)))
        tuner.poll()
        decisions = []
        for _ in range(4):  # 40 statements of the new phase
            source.feed(_statements(*([C] * 10)))
            decisions.extend(tuner.poll())
        drift_decisions = [d for d in decisions if d.kind == "drift"]
        assert len(drift_decisions) == 1
        assert tuner.detector.fires == 1
        assert tuner.detector.rearms == 1  # re-anchored after window turnover
        assert tuner.detector.armed
        decision = drift_decisions[0]
        assert decision.drift > 0.35
        # Warm re-tune: only the never-seen template pays a cache build.
        assert decision.new_templates == 1
        assert decision.caches_built == decision.new_templates
        assert tuner.session.statistics.caches_built == 3  # 2 bootstrap + 1 delta
        assert tuner.retunes_triggered == 1
        # Re-armed and stationary again: more of the same phase is quiet.
        source.feed(_statements(*([C] * 20)))
        assert tuner.poll() == []
        assert tuner.detector.fires == 1

    def test_oscillation_below_high_water_never_retunes(self):
        tuner, source = make_tuner(window=20, high=0.35, low=0.15)
        source.feed(_statements(*([A] * 20)))
        tuner.poll()
        for _ in range(3):
            # 25% drift excursion (above low, below high), then back.
            source.feed(_statements(*([A] * 15 + [C] * 5)))
            tuner.poll()
            source.feed(_statements(*([A] * 20)))
            tuner.poll()
        assert max(tuner.detector.history) > 0.15  # the band was actually entered
        assert max(tuner.detector.history) <= 0.35
        assert tuner.detector.fires == 0
        assert tuner.retunes_triggered == 0
        assert tuner.session.statistics.recommend_calls == 1

    def test_transition_costing_rejects_an_unpayable_retune(self):
        tuner, source = make_tuner(window=10, horizon=1)
        source.feed(_statements(*([A] * 10)))
        tuner.poll()
        applied_before = tuner.statistics.applied_indexes
        source.feed(_statements(*([C] * 40)))
        decisions = [d for d in tuner.poll() if d.kind == "drift"]
        assert len(decisions) == 1
        decision = decisions[0]
        assert decision.verdict == "rejected"
        assert not decision.accepted
        assert decision.build_cost > decision.projected_saving
        assert decision.added_indexes  # there *was* a candidate transition
        assert tuner.statistics.applied_indexes == applied_before
        assert tuner.retunes_rejected == 1
        assert tuner.session.statistics.retunes_rejected == 1

    def test_statistics_snapshot_round_trips(self):
        tuner, source = make_tuner(window=10)
        source.feed(_statements(*([A] * 10)))
        tuner.poll()
        snapshot = tuner.statistics.to_dict()
        assert snapshot["bootstrapped"] is True
        assert snapshot["window_statements"] == 10
        assert snapshot["last_decision"]["kind"] == "bootstrap"
        assert snapshot["applied_indexes"] == tuner.statistics.applied_indexes


class TestRunLoop:
    def test_idle_exit_after_quiet_period(self):
        clock = [0.0]
        tuner, source = make_tuner(window=10, clock=lambda: clock[0])
        events = []

        def sleep(seconds):
            clock[0] += seconds

        polls = tuner.run(idle_exit_seconds=1.0, on_event=events.append, sleep=sleep)
        assert events[-1]["event"] == "idle_exit"
        assert polls == events[-1]["polls"]

    def test_max_polls_caps_the_loop(self):
        tuner, source = make_tuner(window=10)
        events = []
        polls = tuner.run(max_polls=3, on_event=events.append, sleep=lambda s: None)
        assert polls == 3
        assert events[-1] == {"event": "max_polls", "polls": 3}

    def test_stop_ends_the_loop(self):
        tuner, source = make_tuner(window=10)
        tuner.stop()
        events = []
        assert tuner.run(on_event=events.append, sleep=lambda s: None) == 0
        assert events[-1]["event"] == "stopped"

    def test_run_emits_decision_events(self):
        tuner, source = make_tuner(window=10)
        source.feed(_statements(*([A] * 10)))
        events = []
        tuner.run(max_polls=2, on_event=events.append, sleep=lambda s: None)
        kinds = [e for e in events if e["event"] == "decision"]
        assert len(kinds) == 1
        assert kinds[0]["kind"] == "bootstrap"


class TestConfigValidation:
    def test_all_problems_reported_at_once(self):
        with pytest.raises(AdvisorError) as excinfo:
            OnlineTunerConfig(
                window_statements=0,
                drift_low_water=0.8,
                drift_high_water=0.2,
                horizon_statements=-5,
            )
        message = str(excinfo.value)
        assert "window_statements" in message
        assert "horizon_statements" in message
        assert "low < high" in message

    def test_waters_must_be_in_unit_interval(self):
        with pytest.raises(AdvisorError, match="drift_high_water"):
            OnlineTunerConfig(drift_high_water=1.5)
        with pytest.raises(AdvisorError, match="drift_low_water"):
            OnlineTunerConfig(drift_low_water=-0.1)

    def test_unknown_metric_rejected(self):
        with pytest.raises(AdvisorError, match="unknown drift metric"):
            OnlineTunerConfig(drift_metric="cosine")

    def test_poll_interval_and_age_and_stride(self):
        with pytest.raises(AdvisorError, match="poll_interval_seconds"):
            OnlineTunerConfig(poll_interval_seconds=0)
        with pytest.raises(AdvisorError, match="max_window_age_seconds"):
            OnlineTunerConfig(max_window_age_seconds=-1.0)
        with pytest.raises(AdvisorError, match="evaluate_every"):
            OnlineTunerConfig(evaluate_every=0)
        assert OnlineTunerConfig(window_statements=80).evaluation_stride == 10
        assert OnlineTunerConfig(evaluate_every=3).evaluation_stride == 3


class TestTwoPhaseTrace:
    """The acceptance scenario end-to-end over the TPC-H-like workload."""

    def test_read_to_write_trace_retunes_exactly_once(self):
        workload = TpchLikeWorkload(seed=7)
        lines = workload.trace(480, seed=11, phases=("read", "write"))
        session = TuningSession(
            build_tpch_like_catalog(),
            [],
            options=AdvisorOptions(candidate_policy="per_query", max_candidates=20),
        )
        source = MemoryStatementSource()
        config = OnlineTunerConfig(
            window_statements=120, drift_high_water=0.3, drift_low_water=0.1
        )
        tuner = OnlineTuner(session, source, config)
        decisions = []
        for start in range(0, len(lines), 40):
            source.feed(lines[start:start + 40])
            decisions.extend(tuner.poll())
        kinds = [d.kind for d in decisions]
        assert kinds.count("bootstrap") == 1
        assert kinds.count("drift") == 1  # exactly one re-tune at the boundary
        assert tuner.detector.fires == 1
        # Every tune paid cache builds only for never-seen templates.
        for decision in decisions:
            assert decision.caches_built == decision.new_templates
        assert session.statistics.caches_built == sum(d.new_templates for d in decisions)

    def test_stationary_trace_of_the_same_length_never_retunes(self):
        workload = TpchLikeWorkload(seed=7)
        lines = workload.trace(480, seed=11, phases=("read",))
        session = TuningSession(
            build_tpch_like_catalog(),
            [],
            options=AdvisorOptions(candidate_policy="per_query", max_candidates=20),
        )
        tuner = OnlineTuner(
            session,
            MemoryStatementSource(),
            OnlineTunerConfig(
                window_statements=120, drift_high_water=0.3, drift_low_water=0.1
            ),
        )
        for start in range(0, len(lines), 40):
            tuner.source.feed(lines[start:start + 40])
            tuner.poll()
        assert tuner.detector.fires == 0
        assert tuner.retunes_triggered == 0
        assert session.statistics.recommend_calls == 1


class TestParameterChurnTrace:
    """Parameter-skew replay: literal churn must be invisible to the daemon.

    The traces below re-execute a fixed template pool with many literal
    variants per template (``TracePhase(parameter_variants=...)``).  Keying
    the sliding window by template fingerprint means that churn neither
    grows the distinct-key count nor moves the drift distribution -- only a
    genuine change of template pool may trigger a re-tune.
    """

    def _phase(self, name, sqls, variants=16):
        statements = tuple(
            parse_statement(sql, name=f"{name}{i}") for i, sql in enumerate(sqls)
        )
        return TracePhase(
            name=name,
            statements=statements,
            skew=1.5,
            parameter_variants=variants,
            parameter_skew=1.1,
        )

    def test_stationary_churn_trace_never_retunes_and_keys_stay_bounded(self):
        lines = emit_trace([self._phase("hot", [A, B])], 240, seed=11)
        # The churn is real: far more distinct SQL strings than templates.
        assert len({json.loads(line)["sql"] for line in lines}) > 10
        tuner, source = make_tuner(window=40, high=0.3, low=0.1)
        for start in range(0, len(lines), 40):
            source.feed(lines[start:start + 40])
            tuner.poll()
        assert tuner.detector.fires == 0
        assert tuner.retunes_triggered == 0
        assert tuner.session.statistics.recommend_calls == 1  # bootstrap only
        # Bounded distinct keys: the pool has 2 templates, so does the window.
        assert tuner.window.template_count == 2
        assert len(tuner.session.queries) == 2

    def test_two_phase_churn_trace_still_retunes_exactly_once(self):
        lines = emit_trace(
            [self._phase("read", [A, B]), self._phase("write", [C])],
            240,
            seed=11,
        )
        tuner, source = make_tuner(window=40, high=0.3, low=0.1)
        decisions = []
        for start in range(0, len(lines), 40):
            source.feed(lines[start:start + 40])
            decisions.extend(tuner.poll())
        kinds = [d.kind for d in decisions]
        assert kinds.count("bootstrap") == 1
        assert kinds.count("drift") == 1  # the pool change, not the churn
        assert tuner.detector.fires == 1
        for decision in decisions:
            assert decision.caches_built == decision.new_templates
        # Across both phases only 3 templates ever existed.
        assert len(tuner.session.queries) <= 3
