"""Tests for the star-schema and TPC-H-like workload generators."""

from repro.optimizer import Optimizer
from repro.optimizer.interesting_orders import combination_count
from repro.query.preprocessor import QueryPreprocessor
from repro.util.units import GIB
from repro.workloads import StarSchemaWorkload
from repro.workloads.star_schema import TOTAL_DIMS
from repro.workloads.tpch_like import (
    build_tpch_like_catalog,
    tpch_q5_like_query,
    tpch_small_join_query,
)


class TestStarSchema:
    def test_paper_shape(self, star_workload):
        """One fact table plus 28 dimension tables, roughly 10 GB."""
        catalog = star_workload.catalog()
        assert len(catalog.tables()) == TOTAL_DIMS + 1
        assert catalog.has_table("fact")
        size = catalog.database_size_bytes()
        assert 7 * GIB < size < 13 * GIB

    def test_schema_is_valid_snowflake(self, star_workload):
        catalog = star_workload.catalog()
        catalog.validate()
        # Every dimension is reachable from the fact table via FK edges.
        fact = catalog.table("fact")
        assert len(fact.foreign_keys) == 8

    def test_ten_queries(self, star_workload):
        queries = star_workload.queries()
        assert len(queries) == 10
        assert [q.name for q in queries] == [f"Q{i}" for i in range(1, 11)]

    def test_queries_valid_against_catalog(self, star_workload):
        preprocessor = QueryPreprocessor(star_workload.catalog())
        for query in star_workload.queries():
            prepared = preprocessor.preprocess(query)
            assert prepared.table_count >= 2

    def test_queries_have_paper_features(self, star_workload):
        """Joins over FKs, random selects, 1%-selectivity filters, order-by."""
        for query in star_workload.queries():
            assert query.joins
            assert query.select_columns
            assert query.order_by
        assert any(query.filters for query in star_workload.queries())

    def test_queries_join_2_to_6_tables(self, star_workload):
        counts = {q.table_count for q in star_workload.queries()}
        assert min(counts) == 2
        assert max(counts) == 6

    def test_combination_counts_in_paper_range(self, star_workload):
        total = sum(combination_count(q) for q in star_workload.queries())
        assert 100 <= total <= 2000

    def test_deterministic_across_instances(self):
        a = StarSchemaWorkload(seed=7)
        b = StarSchemaWorkload(seed=7)
        assert [q.to_sql() for q in a.queries()] == [q.to_sql() for q in b.queries()]

    def test_different_seed_changes_queries(self):
        a = StarSchemaWorkload(seed=7)
        b = StarSchemaWorkload(seed=8)
        assert [q.to_sql() for q in a.queries()] != [q.to_sql() for q in b.queries()]

    def test_queries_optimizable(self, star_workload):
        optimizer = Optimizer(star_workload.catalog())
        for query in star_workload.queries()[:3]:
            assert optimizer.optimize(query).cost > 0

    def test_scaled_database_materializes_all_tables(self, star_workload):
        database = star_workload.database(scale=0.00005)
        assert len(database.table_names()) == TOTAL_DIMS + 1
        assert database.relation("fact").row_count > 0

    def test_describe(self, star_workload):
        info = star_workload.describe()
        assert info["tables"] == TOTAL_DIMS + 1
        assert info["queries"] == 10


class TestTpchLike:
    def test_catalog_tables_and_cardinalities(self, tpch_catalog):
        assert {t.name for t in tpch_catalog.tables()} == {
            "region", "nation", "supplier", "customer", "orders", "lineitem"
        }
        assert tpch_catalog.statistics("lineitem").row_count > tpch_catalog.statistics(
            "orders"
        ).row_count

    def test_scale_factor(self):
        small = build_tpch_like_catalog(scale_factor=0.01)
        assert small.statistics("lineitem").row_count == 60_000

    def test_q5_like_has_648_combinations(self):
        assert combination_count(tpch_q5_like_query()) == 648

    def test_q5_like_optimizable(self, tpch_catalog):
        result = Optimizer(tpch_catalog).optimize(tpch_q5_like_query())
        assert result.plan.tables == frozenset(tpch_q5_like_query().tables)

    def test_small_join_query_valid(self, tpch_catalog):
        prepared = QueryPreprocessor(tpch_catalog).preprocess(tpch_small_join_query())
        assert prepared.table_count == 3
