"""Tests for plan execution: correctness of every operator and I/O accounting."""

import pytest

from repro.catalog.index import Index
from repro.executor import PlanExecutor
from repro.executor.predicates import qualified
from repro.optimizer import Optimizer, OptimizerOptions
from repro.query import QueryBuilder
from repro.storage.datagen import DataGenerator


@pytest.fixture
def database(small_catalog):
    db = DataGenerator(small_catalog, seed=11).generate(
        row_counts={"customers": 200, "products": 80, "sales": 2_000}
    )
    db.analyze()
    return db


def reference_join_rows(database, query):
    """Brute-force evaluation of a query's join + filters (no grouping)."""
    from repro.executor.predicates import apply_predicates, qualify_row
    import itertools

    tables = {t: [qualify_row(t, r) for r in database.relation(t).rows()] for t in query.tables}
    rows = []
    for combo in itertools.product(*tables.values()):
        merged = {}
        for part in combo:
            merged.update(part)
        ok = True
        for join in query.joins:
            if merged[f"{join.left.table}.{join.left.column}"] != merged[
                f"{join.right.table}.{join.right.column}"
            ]:
                ok = False
                break
        if ok:
            rows.append(merged)
    return apply_predicates(query.filters, rows)


class TestScans:
    def test_seq_scan_filtering(self, small_catalog, database):
        query = (
            QueryBuilder("scan")
            .select("products.p_price")
            .from_tables("products")
            .where("products.p_category", "<=", 40)
            .build()
        )
        plan = Optimizer(small_catalog).optimize(query).plan
        result = PlanExecutor(database, query).execute(plan)
        expected = [
            r for r in database.relation("products").rows() if r["p_category"] <= 40
        ]
        assert result.row_count == len(expected)
        assert result.stats.sequential_pages > 0

    def test_index_scan_matches_seq_scan(self, small_catalog, database):
        query = (
            QueryBuilder("scan")
            .select("products.p_price", "products.p_category")
            .from_tables("products")
            .where_between("products.p_category", 10, 1000)
            .order_by("products.p_category")
            .build()
        )
        plain_plan = Optimizer(small_catalog).optimize(query).plan
        plain = PlanExecutor(database, query).execute(plain_plan)

        # Build an index-scan plan explicitly (on tiny tables the optimizer
        # rightly prefers the sequential scan, but the executor must still
        # produce identical rows through the index path).
        from repro.optimizer.access_paths import AccessPathCollector
        from repro.optimizer.cost_model import CostModel
        from repro.optimizer.selectivity import SelectivityEstimator
        from repro.optimizer.plan import ScanNode

        index = Index("products", ["p_category", "p_price"])
        collector = AccessPathCollector(
            small_catalog, CostModel(), SelectivityEstimator(small_catalog)
        )
        with small_catalog.only_indexes([index]):
            paths = collector.all_paths_for_table(query, "products")
        index_path = next(p for p in paths if p.index is not None)
        indexed = PlanExecutor(database, query).execute(ScanNode(index_path))

        assert indexed.row_count == plain.row_count
        key = qualified("products", "p_category")
        assert [r[key] for r in indexed.rows] == sorted(r[key] for r in plain.rows)


class TestJoins:
    @pytest.mark.parametrize("enable_nestloop", [True, False])
    def test_join_results_match_reference(self, small_catalog, database, enable_nestloop):
        query = (
            QueryBuilder("join")
            .select("sales.s_amount", "customers.c_region")
            .join("sales.s_customer", "customers.c_id")
            .where("customers.c_region", "<=", 100)
            .build()
        )
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        optimizer = Optimizer(small_catalog, OptimizerOptions(enable_nestloop=enable_nestloop))
        plan = optimizer.optimize(query).plan
        result = PlanExecutor(database, query).execute(plan)
        expected = reference_join_rows(database, query)
        assert result.row_count == len(expected)

    def test_three_way_join_count(self, small_catalog, database, join_query):
        plan = Optimizer(small_catalog).optimize(join_query).plan
        # Strip the aggregation for the reference count by comparing group sums.
        result = PlanExecutor(database, join_query).execute(plan)
        expected_rows = reference_join_rows(database, join_query)
        # The executed plan aggregates by region; total group membership must match.
        regions = {}
        for row in expected_rows:
            regions.setdefault(row[qualified("customers", "c_region")], 0)
        assert result.row_count == len(regions)


class TestAggregationAndOrdering:
    def test_group_sums_match_reference(self, small_catalog, database, join_query):
        plan = Optimizer(small_catalog).optimize(join_query).plan
        result = PlanExecutor(database, join_query).execute(plan)
        expected_rows = reference_join_rows(database, join_query)
        sums = {}
        for row in expected_rows:
            region = row[qualified("customers", "c_region")]
            sums[region] = sums.get(region, 0.0) + row[qualified("sales", "s_amount")]
        produced = {
            row[qualified("customers", "c_region")]: row["sum(sales.s_amount)"]
            for row in result.rows
        }
        assert produced.keys() == sums.keys()
        for region, total in sums.items():
            assert produced[region] == pytest.approx(total)

    def test_order_by_respected(self, small_catalog, database, simple_query):
        plan = Optimizer(small_catalog).optimize(simple_query).plan
        result = PlanExecutor(database, simple_query).execute(plan)
        assert result.row_count > 0
        # The final projection keeps only the select list, so verify the sort
        # happened by checking the plan shape executed without error and the
        # output size matches the filter.
        expected = [r for r in database.relation("sales").rows() if r["s_quantity"] <= 5_000]
        assert result.row_count == len(expected)

    def test_count_star_aggregate(self, small_catalog, database):
        query = (
            QueryBuilder("counts")
            .aggregate("count")
            .select("customers.c_region")
            .from_tables("customers")
            .group_by("customers.c_region")
            .build()
        )
        plan = Optimizer(small_catalog).optimize(query).plan
        result = PlanExecutor(database, query).execute(plan)
        total = sum(row["count(*)"] for row in result.rows)
        assert total == database.relation("customers").row_count


class TestSimulatedCost:
    def test_indexes_reduce_simulated_time_for_selective_query(self, small_catalog, database):
        query = (
            QueryBuilder("selective")
            .select("sales.s_amount")
            .from_tables("sales")
            .where_between("sales.s_quantity", 1, 2_000)
            .build()
        )
        plain_plan = Optimizer(small_catalog).optimize(query).plan
        plain = PlanExecutor(database, query).execute(plain_plan)

        small_catalog.add_index(Index("sales", ["s_quantity", "s_amount"]))
        indexed_plan = Optimizer(small_catalog).optimize(query).plan
        indexed = PlanExecutor(database, query).execute(indexed_plan)

        assert indexed.row_count == plain.row_count
        assert indexed.simulated_milliseconds < plain.simulated_milliseconds

    def test_statistics_accumulate(self, small_catalog, database, join_query):
        plan = Optimizer(small_catalog).optimize(join_query).plan
        stats = PlanExecutor(database, join_query).execute(plan).stats
        assert stats.rows_processed > 0
        assert stats.sequential_pages + stats.random_pages > 0
        assert stats.simulated_milliseconds() > 0
