"""Cross-engine equivalence of maintenance-cost evaluation.

The same mixed read/write workload must price identically (within 1e-9)
whether it is evaluated by the vectorized numpy backend, the pure-Python
compiled layout or the original scalar walk -- otherwise `--engine` would
change recommendations.  Randomized in two tiers: hypothesis-generated
synthetic caches with maintenance profiles (fast, adversarial shapes) and
real caches built for randomized DML statements over the small catalog.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.advisor.benefit import CacheBackedWorkloadCostModel
from repro.advisor.candidates import CandidateGenerator
from repro.catalog.index import Index
from repro.inum.access_costs import AccessCostInfo
from repro.inum.cache import CachedSlot, CacheEntry, InumCache
from repro.inum.compiled import compile_cache, numpy_available
from repro.inum.cost_estimation import InumCostModel
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.optimizer.maintenance import MaintenanceProfile
from repro.optimizer.optimizer import Optimizer
from repro.query.ast import ColumnRef, Comparison, DmlKind, DmlStatement, Predicate

from conftest import build_join_query, build_simple_query, build_small_catalog

_settings = settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None)

_cost = st.floats(min_value=0.1, max_value=1e6, allow_nan=False, allow_infinity=False)


class _StubStatement:
    """Minimal statement surface an :class:`InumCache` needs."""

    def __init__(self, tables):
        self.name = "synthetic_dml"
        self.tables = list(tables)


@st.composite
def maintenance_caches(draw):
    """A synthetic single-table cache with a maintenance profile, plus indexes."""
    table = "alpha"
    cache = InumCache(_StubStatement([table]))
    cache.access_costs.add(AccessCostInfo(
        table=table, index_key=None,
        full_cost=draw(_cost), probe_cost=draw(st.one_of(st.none(), _cost)),
    ))
    indexes = []
    for number in range(draw(st.integers(min_value=0, max_value=5))):
        index = Index(table, [f"col{number}"])
        indexes.append(index)
        if draw(st.booleans()):  # some candidates never get read columns
            cache.access_costs.add(AccessCostInfo(
                table=table, index_key=index.key,
                full_cost=draw(_cost), probe_cost=draw(st.one_of(st.none(), _cost)),
                provided_order=draw(st.sampled_from([None, f"col{number}"])),
            ))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        slot_count = draw(st.integers(min_value=0, max_value=2))
        cache.add_entry(CacheEntry(
            ioc=InterestingOrderCombination({table: None}),
            internal_cost=draw(_cost),
            slots=tuple(
                CachedSlot(table=table, required_order=None)
                for _ in range(slot_count)
            ),
        ))
    per_index = {
        index.key: draw(_cost)
        for index in indexes
        if draw(st.booleans())
    }
    cache.maintenance = MaintenanceProfile(
        statement="synthetic_dml",
        base_cost=draw(st.floats(min_value=0.0, max_value=1e5)),
        per_index=per_index,
    )
    subset = draw(st.lists(
        st.sampled_from(indexes), unique_by=lambda index: index.key, max_size=5,
    ) if indexes else st.just([]))
    return cache, subset


class TestSyntheticCacheEquivalence:
    @_settings
    @given(data=maintenance_caches())
    def test_backends_agree_with_scalar_within_1e9(self, data):
        cache, subset = data
        scalar = InumCostModel(cache)
        expected = scalar.estimate_with_indexes(subset)
        profile = cache.maintenance
        # The scalar estimate decomposes: read minimum plus maintenance.
        assert expected >= profile.cost_for(subset) - 1e-9
        backends = ["python"] + (["numpy"] if numpy_available() else [])
        for backend in backends:
            engine = compile_cache(cache, backend=backend)
            assert engine.estimate(subset) == pytest.approx(expected, rel=1e-9, abs=1e-9)
            assert engine.maintenance_cost(subset) == pytest.approx(
                profile.cost_for(subset), rel=1e-12, abs=1e-12
            )
            batch = engine.estimate_batch([subset, []])
            assert batch[0] == pytest.approx(expected, rel=1e-9, abs=1e-9)
            assert batch[1] == pytest.approx(
                scalar.estimate_with_indexes([]), rel=1e-9, abs=1e-9
            )

    @_settings
    @given(data=maintenance_caches())
    def test_entry_costs_carry_the_same_maintenance_constant(self, data):
        cache, subset = data
        backends = ["python"] + (["numpy"] if numpy_available() else [])
        references = None
        for backend in backends:
            costs = compile_cache(cache, backend=backend).entry_costs(subset)
            if references is None:
                references = costs
                continue
            assert costs == pytest.approx(references, rel=1e-9, abs=1e-9)


def _random_dml(rng: random.Random, number: int) -> DmlStatement:
    kind = rng.choice([DmlKind.INSERT, DmlKind.UPDATE, DmlKind.DELETE])
    columns = ["s_amount", "s_quantity", "s_customer", "s_product"]
    name = f"rand_w{number}"
    if kind is DmlKind.INSERT:
        picked = rng.sample(columns, rng.randint(1, 3))
        return DmlStatement(
            name=name, kind=kind, table="sales", columns=tuple(picked),
            values=tuple(
                tuple(float(rng.randint(1, 10_000)) for _ in picked)
                for _ in range(rng.randint(1, 3))
            ),
        )
    low = float(rng.randint(1, 400_000))
    predicate = Predicate(
        ColumnRef("sales", rng.choice(columns)), Comparison.BETWEEN,
        low, low + float(rng.randint(1, 50_000)),
    )
    if kind is DmlKind.DELETE:
        return DmlStatement(name=name, kind=kind, table="sales", filters=(predicate,))
    set_column = rng.choice(columns)
    return DmlStatement(
        name=name, kind=kind, table="sales", columns=(set_column,),
        set_values=(float(rng.randint(1, 10_000)),), filters=(predicate,),
    )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestRealWorkloadEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_engines_agree_on_randomized_mixed_workloads(self, seed):
        rng = random.Random(seed)
        catalog = build_small_catalog()
        statements = [build_join_query("q_join"), build_simple_query("q_scan")]
        statements += [_random_dml(rng, number) for number in range(1, 4)]
        pool = CandidateGenerator(catalog).for_workload(statements)
        weights = {stmt.name: float(rng.randint(1, 20)) for stmt in statements}
        model = CacheBackedWorkloadCostModel(
            Optimizer(catalog), statements, pool, weights=weights
        )
        subsets = [[]] + [
            rng.sample(pool, rng.randint(1, min(5, len(pool))))
            for _ in range(6)
        ]
        reference = None
        for engine in ("scalar", "python", "numpy"):
            model.select_engine(engine)
            measured = [
                (model.workload_cost(subset), model.per_query_costs(subset))
                for subset in subsets
            ]
            if reference is None:
                reference = measured
                continue
            for (total, per_query), (expected_total, expected_per_query) in zip(
                measured, reference
            ):
                assert total == pytest.approx(expected_total, rel=1e-9, abs=1e-9)
                for name, cost in per_query.items():
                    assert cost == pytest.approx(
                        expected_per_query[name], rel=1e-9, abs=1e-9
                    )
