"""Golden equivalence layer: compressed tuning == uncompressed weighted tuning.

Workload compression (:mod:`repro.workloads.compress`) claims to be
*semantics-preserving*: folding a trace's statement instances into one
weighted representative per template must not change what the advisor
recommends or what it thinks the recommendation costs.  This module makes
that claim checkable instead of asserted, on two workloads:

* **fig-7** -- the paper's ten-query star workload, replayed as duplicated
  instances; the compressed run must reproduce the pinned golden picks of
  ``test_golden_recommend.py`` with costs scaled by exactly the
  multiplicity;
* **a 2k-statement Zipfian trace** -- the mixed read/write stream
  ``StarSchemaWorkload.trace`` emits, compressed versus the same workload
  hand-folded into distinct statements with count weights (the
  "uncompressed weighted run").

Both are exercised across every evaluation engine (scalar / python /
numpy / arena) and both selectors (``lazy`` and ``ilp``): picks must be
identical and every reported cost must match within 1e-9.  A final test
drops the weights entirely -- tuning the raw instance list as individual
session entries -- to prove the multiplicity-weight fold means exactly
"this statement, executed that many times".
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from test_golden_recommend import GOLDEN_COST_AFTER, GOLDEN_PICKS, MAX_CANDIDATES
from repro.advisor.advisor import AdvisorOptions
from repro.api.requests import RecommendRequest
from repro.api.session import TuningSession
from repro.inum.compiled import numpy_available
from repro.query.parser import parse_statement
from repro.util.fingerprint import template_fingerprint
from repro.util.units import gigabytes
from repro.workloads import StarSchemaWorkload

_ENGINES = ["scalar", "python"] + (["numpy"] if numpy_available() else []) + ["arena"]
_SELECTORS = ["lazy", "ilp"]

#: Candidate cap for the trace matrix: small enough that the ILP
#: branch-and-bound proves gap 0 in well under a second on this instance
#: (at 40 candidates it runs to its time limit, whose wall-clock cutoff
#: would also make the compressed/reference equality nondeterministic),
#: large enough that it actually branches and the selectors disagree with
#: a trivial pick.
TRACE_CANDIDATES = 25
TRACE_LENGTH = 2000

#: Exact pick order is only guaranteed for the sequential engines; the
#: vectorized reductions may permute *equal-benefit* picks (documented
#: 1-ulp tie behaviour), so those compare pick sets.
_ORDER_EXACT = {"scalar", "python"}


def _picks(result):
    return [(index.table, index.columns) for index in result.selected_indexes]


def _assert_same_recommendation(compressed, reference, engine, name_map=None):
    """Identical picks and all costs within 1e-9.

    ``name_map`` translates reference per-statement names to compressed
    (template) names; identity when omitted.
    """
    left, right = _picks(compressed), _picks(reference)
    if engine in _ORDER_EXACT:
        assert left == right, (
            f"{engine}: compressed run changed the pick sequence:\n"
            f"  compressed {left}\n  reference  {right}"
        )
    else:
        assert sorted(left) == sorted(right)
    assert compressed.workload_cost_before == pytest.approx(
        reference.workload_cost_before, rel=1e-9
    )
    assert compressed.workload_cost_after == pytest.approx(
        reference.workload_cost_after, rel=1e-9
    )
    assert compressed.total_index_bytes == reference.total_index_bytes
    name_map = name_map or {name: name for name in reference.per_query_cost_after}
    assert set(compressed.per_query_cost_after) == set(name_map.values())
    for ref_name, tpl_name in name_map.items():
        assert compressed.per_query_cost_after[tpl_name] == pytest.approx(
            reference.per_query_cost_after[ref_name], rel=1e-9
        ), f"{engine}: cost of {ref_name} moved under compression"


# -- fig-7: duplicated instances must reproduce the pinned golden run -------


class TestFig7Golden:
    def _options(self, engine, selector="lazy", **overrides):
        return AdvisorOptions(
            space_budget_bytes=gigabytes(5),
            max_candidates=MAX_CANDIDATES,
            engine=engine,
            selector=selector,
            **overrides,
        )

    @pytest.mark.parametrize("engine", _ENGINES)
    def test_compressing_unique_templates_is_a_no_op(self, engine):
        """Ten distinct templates: compression must change nothing at all."""
        workload = StarSchemaWorkload(seed=7)
        session = TuningSession(
            workload.catalog(), workload.queries(),
            options=self._options(engine, compress=True),
        )
        response = session.recommend()
        result = response.result
        assert response.compression == {
            "statements": 10, "templates": 10, "ratio": 1.0,
            "total_weight": 10.0, "lossless": True,
        }
        if engine in _ORDER_EXACT:
            assert _picks(result) == GOLDEN_PICKS
        else:
            assert sorted(_picks(result)) == sorted(GOLDEN_PICKS)
        assert result.workload_cost_after == pytest.approx(
            GOLDEN_COST_AFTER, rel=1e-9
        )

    def test_triplicated_instances_fold_to_the_golden_picks(self):
        """3 literal-identical instances per query == the golden run x3.

        Uniform multiplicity cannot move any *relative* benefit, so the
        pick sequence is the pinned golden one and every cost is exactly
        three times its golden value.
        """
        workload = StarSchemaWorkload(seed=7)
        instances = [
            query.renamed(f"{query.name}_run{copy}")
            for query in workload.queries()
            for copy in range(3)
        ]
        session = TuningSession(
            workload.catalog(), instances,
            options=self._options("python", compress=True),
        )
        response = session.recommend()
        result = response.result
        assert response.compression == {
            "statements": 30, "templates": 10, "ratio": 3.0,
            "total_weight": 30.0, "lossless": True,
        }
        assert _picks(result) == GOLDEN_PICKS
        assert result.workload_cost_after == pytest.approx(
            3.0 * GOLDEN_COST_AFTER, rel=1e-9
        )
        # One cache per template, never one per instance.
        assert response.caches_built + response.caches_from_store == 10


# -- the 2k-statement Zipfian trace, every engine x selector ----------------


@pytest.fixture(scope="module")
def trace_instances():
    """The 2k-statement mixed trace as parsed, uniquely named statements."""
    workload = StarSchemaWorkload(seed=7)
    lines = workload.trace(TRACE_LENGTH, seed=11, phases=("mixed",))
    statements = [
        parse_statement(json.loads(line)["sql"], name=f"s{position:04d}")
        for position, line in enumerate(lines)
    ]
    assert len(statements) == TRACE_LENGTH
    return workload.catalog(), statements


def _fold_by_sql(statements):
    """The hand-built reference: distinct statements + count weights.

    This is the "uncompressed weighted run" -- no templatizer involved,
    just exact-SQL multiplicity counting, which is equivalent for a trace
    whose instances of a template share their literals.
    """
    distinct, counts = [], Counter()
    first_seen = {}
    for statement in statements:
        sql = statement.to_sql()
        if sql not in first_seen:
            first_seen[sql] = statement
            distinct.append(statement)
        counts[first_seen[sql].name] += 1.0
    return distinct, dict(counts)


def _trace_options(engine, selector):
    return AdvisorOptions(
        space_budget_bytes=gigabytes(2),
        max_candidates=TRACE_CANDIDATES,
        engine=engine,
        selector=selector,
    )


@pytest.fixture(scope="module")
def trace_references(trace_instances):
    """Reference recommendations, memoized per (engine, selector)."""
    catalog, statements = trace_instances
    distinct, counts = _fold_by_sql(statements)
    cache = {}

    def reference(engine, selector):
        if (engine, selector) not in cache:
            session = TuningSession(
                catalog, distinct, options=_trace_options(engine, selector)
            )
            session.set_weights(counts)
            cache[(engine, selector)] = session.recommend().result
        return cache[(engine, selector)]

    return reference


@pytest.mark.parametrize("selector", _SELECTORS)
@pytest.mark.parametrize("engine", _ENGINES)
def test_trace_compression_matches_the_weighted_run(
    trace_instances, trace_references, engine, selector
):
    """Compressed recommend == hand-folded weighted recommend, at 1e-9."""
    catalog, statements = trace_instances
    distinct, counts = _fold_by_sql(statements)
    session = TuningSession(
        catalog, statements, options=_trace_options(engine, selector)
    )
    response = session.recommend(RecommendRequest(compress=True))

    assert response.compression is not None
    assert response.compression["statements"] == TRACE_LENGTH
    assert response.compression["templates"] == len(distinct)
    assert response.compression["lossless"] is True
    # Dozens of cache builds, not thousands: exactly one per template.
    assert response.caches_built + response.caches_from_store == len(distinct)

    name_map = {
        statement.name: f"tpl_{template_fingerprint(statement)}"
        for statement in distinct
    }
    _assert_same_recommendation(
        response.result, trace_references(engine, selector), engine, name_map
    )


def test_add_queries_compress_matches_the_weighted_run(
    trace_instances, trace_references
):
    """The streaming entry point folds to the same recommendation.

    ``add_queries(compress=True)`` merges multiplicity into the session's
    statement weights batch by batch; after feeding the whole trace in
    four chunks the session must hold one representative per template and
    recommend exactly what the hand-folded weighted session does.
    """
    catalog, statements = trace_instances
    distinct, _ = _fold_by_sql(statements)
    session = TuningSession(catalog, options=_trace_options("auto", "lazy"))
    chunk = TRACE_LENGTH // 4
    for start in range(0, TRACE_LENGTH, chunk):
        names = session.add_queries(statements[start:start + chunk], compress=True)
        assert all(name.startswith("tpl_") for name in names)
    assert len(session.queries) == len(distinct)
    assert sum(session.options.weight_map().values()) == pytest.approx(TRACE_LENGTH)

    name_map = {
        statement.name: f"tpl_{template_fingerprint(statement)}"
        for statement in distinct
    }
    _assert_same_recommendation(
        session.recommend().result,
        trace_references("auto", "lazy"),
        "auto",
        name_map,
    )


def test_weighted_fold_equals_true_instance_replay(trace_instances):
    """Multiplicity weights mean exactly "executed that many times".

    The ground truth has no weights at all: every instance is its own
    session entry.  That is only affordable for a slice of the trace, but
    it pins the semantics the whole equivalence layer leans on -- the
    weighted fold and the raw instance list price identically and pick
    identically.
    """
    catalog, statements = trace_instances
    slice_ = statements[:200]
    options = AdvisorOptions(
        space_budget_bytes=gigabytes(2), max_candidates=20, engine="python"
    )

    raw = TuningSession(catalog, slice_, options=options).recommend().result

    compressed_session = TuningSession(
        catalog, slice_, options=AdvisorOptions(
            space_budget_bytes=gigabytes(2), max_candidates=20,
            engine="python", compress=True,
        ),
    )
    compressed = compressed_session.recommend().result

    assert _picks(compressed) == _picks(raw)
    assert compressed.workload_cost_before == pytest.approx(
        raw.workload_cost_before, rel=1e-9
    )
    assert compressed.workload_cost_after == pytest.approx(
        raw.workload_cost_after, rel=1e-9
    )


def test_parameter_churn_is_flagged_as_approximate(trace_instances):
    """Literal variation inside a template reports ``lossless: False``.

    The representative-statement approximation is a documented trade, not
    a silent one: the stats every surface exposes must say which regime
    the workload is in.
    """
    catalog, _ = trace_instances
    variants = [
        parse_statement(
            "SELECT fact.fact_m1 FROM fact "
            f"WHERE fact.fact_m1 > {10 + shift}.0",
            name=f"v{shift}",
        )
        for shift in range(8)
    ]
    session = TuningSession(
        catalog, variants,
        options=AdvisorOptions(
            space_budget_bytes=gigabytes(2), max_candidates=10,
            engine="python", compress=True,
        ),
    )
    response = session.recommend()
    assert response.compression == {
        "statements": 8, "templates": 1, "ratio": 8.0,
        "total_weight": 8.0, "lossless": False,
    }
    # One representative, weight 8: still one cache build.
    assert response.caches_built + response.caches_from_store == 1
