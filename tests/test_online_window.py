"""Tests for the sliding statement window (repro.online.window)."""

from __future__ import annotations

import pytest

from repro.online import SlidingWindow
from repro.query.parser import parse_statement
from repro.util.errors import AdvisorError
from repro.util.fingerprint import template_fingerprint


def _stmt(sql, name="statement"):
    return parse_statement(sql, name=name)


SEL_A = "SELECT customers.c_age FROM customers WHERE customers.c_age > 30"
SEL_B = "SELECT products.p_price FROM products WHERE products.p_price < 10"
INS = "INSERT INTO customers (c_age, c_region) VALUES (30, 1)"


class TestFolding:
    def test_same_sql_folds_to_one_template(self):
        window = SlidingWindow(10)
        names = [window.append(_stmt(SEL_A, name=f"q{i}")) for i in range(3)]
        assert len(set(names)) == 1
        assert names[0] == f"t_{template_fingerprint(_stmt(SEL_A))}"
        assert window.statement_count == 3
        assert window.template_count == 1
        assert window.template_counts() == {template_fingerprint(_stmt(SEL_A)): 3}

    def test_distribution_is_normalized(self):
        window = SlidingWindow(10)
        window.extend([_stmt(SEL_A), _stmt(SEL_A), _stmt(SEL_B), _stmt(INS)])
        distribution = window.distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[template_fingerprint(_stmt(SEL_A))] == pytest.approx(0.5)

    def test_empty_window_distribution_is_empty(self):
        assert SlidingWindow(5).distribution() == {}

    def test_workload_weights_are_occurrence_counts(self):
        window = SlidingWindow(10)
        window.extend([_stmt(SEL_A), _stmt(SEL_A), _stmt(SEL_B)])
        statements, weights = window.workload()
        assert [s.to_sql() for s in statements] == [_stmt(SEL_A).to_sql(), _stmt(SEL_B).to_sql()]
        assert weights == {statements[0].name: 2.0, statements[1].name: 1.0}
        assert all(s.name.startswith("t_") for s in statements)


class TestEviction:
    def test_count_bound_evicts_oldest(self):
        window = SlidingWindow(2)
        window.extend([_stmt(SEL_A), _stmt(SEL_B), _stmt(INS)])
        assert window.statement_count == 2
        assert window.total_appended == 3
        fingerprints = set(window.template_counts())
        assert template_fingerprint(_stmt(SEL_A)) not in fingerprints
        assert template_fingerprint(_stmt(INS)) in fingerprints

    def test_age_bound_evicts_stale_entries(self):
        now = [0.0]
        window = SlidingWindow(10, max_age_seconds=5.0, clock=lambda: now[0])
        window.append(_stmt(SEL_A))
        now[0] = 3.0
        window.append(_stmt(SEL_B))
        now[0] = 6.0
        window.append(_stmt(INS))  # SEL_A is now 6s old -> evicted
        assert window.statement_count == 2
        assert template_fingerprint(_stmt(SEL_A)) not in window.template_counts()

    def test_template_disappears_when_its_last_entry_leaves(self):
        window = SlidingWindow(1)
        window.append(_stmt(SEL_A))
        window.append(_stmt(SEL_B))
        assert window.template_count == 1
        statements, weights = window.workload()
        assert [s.to_sql() for s in statements] == [_stmt(SEL_B).to_sql()]


class TestParameterChurn:
    """Literal-only variation must not inflate the window's template set."""

    def _variants(self, count):
        return [
            _stmt(
                "SELECT customers.c_age FROM customers "
                f"WHERE customers.c_age > {30 + i}.0",
                name=f"q{i}",
            )
            for i in range(count)
        ]

    def test_parameter_churn_folds_to_one_template(self):
        window = SlidingWindow(100)
        names = window.extend(self._variants(50))
        assert window.template_count == 1
        assert len(set(names)) == 1
        fingerprint = template_fingerprint(self._variants(1)[0])
        assert names[0] == f"t_{fingerprint}"
        assert window.template_counts() == {fingerprint: 50}

    def test_distribution_pinned_under_parameter_churn(self):
        """Regression: churn on one template must not dilute drift weights.

        20 literal variants of SEL_A plus 20 verbatim SEL_B executions is a
        50/50 template split; keying by raw query fingerprint would report
        SEL_A as 20 templates of weight 1/40 each and any drift metric
        against a stationary reference would see phantom drift.
        """
        window = SlidingWindow(100)
        window.extend(self._variants(20))
        window.extend([_stmt(SEL_B, name=f"b{i}") for i in range(20)])
        distribution = window.distribution()
        assert distribution == {
            template_fingerprint(self._variants(1)[0]): pytest.approx(0.5),
            template_fingerprint(_stmt(SEL_B)): pytest.approx(0.5),
        }

    def test_first_seen_instance_represents_the_template(self):
        window = SlidingWindow(100)
        variants = self._variants(3)
        window.extend(variants)
        statements, weights = window.workload()
        assert len(statements) == 1
        assert statements[0].to_sql() == variants[0].renamed(statements[0].name).to_sql()
        assert weights == {statements[0].name: 3.0}


class TestValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(AdvisorError, match="max_statements >= 1"):
            SlidingWindow(0)

    def test_rejects_nonpositive_age(self):
        with pytest.raises(AdvisorError, match="max_age_seconds > 0"):
            SlidingWindow(5, max_age_seconds=0.0)
