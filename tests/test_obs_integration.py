"""End-to-end observability: traced recommends, serve metrics, access log."""

from __future__ import annotations

import asyncio
import json
import logging

import pytest

from repro.advisor import AdvisorOptions
from repro.api.requests import RecommendRequest
from repro.api.serve import ServeFrontend
from repro.api.session import TuningSession
from repro.api.server import TuningClient, TuningServer
from repro.obs.instruments import SERVE_REQUESTS
from repro.util.errors import AdvisorError
from repro.util.units import megabytes

from conftest import build_join_query, build_simple_query


def _options(**overrides) -> AdvisorOptions:
    return AdvisorOptions(
        space_budget_bytes=megabytes(512), max_candidates=20, **overrides
    )


def _span_names(span: dict) -> list:
    names = [span["name"]]
    for child in span.get("children", []):
        names.extend(_span_names(child))
    return names


class TestTracedRecommend:
    def test_trace_decomposes_into_build_evaluate_select(self, small_catalog):
        session = TuningSession(
            small_catalog, [build_join_query(), build_simple_query()],
            options=_options(),
        )
        response = session.recommend(RecommendRequest(trace=True))
        trace = response.trace
        assert trace is not None
        assert trace["name"] == "session.recommend"
        assert trace["parent_id"] is None
        children = [child["name"] for child in trace["children"]]
        assert children == [
            "recommend.build",
            "recommend.evaluate",
            "recommend.select",
            "recommend.evaluate",
        ]
        phases = [
            child["attributes"].get("phase")
            for child in trace["children"]
            if child["name"] == "recommend.evaluate"
        ]
        assert phases == ["baseline", "selected"]
        # The children account for (almost) all of the root's wall time.
        accounted = sum(child["duration_ms"] for child in trace["children"])
        assert accounted <= trace["duration_ms"]
        assert accounted >= 0.5 * trace["duration_ms"]
        # One consistent trace id across the whole tree.
        assert len(_span_names(trace)) >= 5

    def test_untraced_recommend_has_no_trace(self, small_catalog):
        session = TuningSession(
            small_catalog, [build_simple_query()], options=_options()
        )
        response = session.recommend()
        assert response.trace is None
        assert "trace" not in response.to_dict()

    def test_trace_survives_the_wire_format(self, small_catalog):
        session = TuningSession(
            small_catalog, [build_simple_query()], options=_options()
        )
        response = session.recommend(RecommendRequest(trace=True))
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["trace"]["name"] == "session.recommend"

    def test_trace_request_field_validated(self):
        with pytest.raises(AdvisorError):
            RecommendRequest.from_dict({"trace": "yes"})
        assert RecommendRequest.from_dict({"trace": True}).trace is True
        assert RecommendRequest.from_dict({}).trace is False


class TestServeMetricsOp:
    @pytest.fixture
    def frontend(self):
        return ServeFrontend(default_catalog="tpch", options=_options())

    def test_prometheus_format_default(self, frontend):
        response = frontend.handle({"id": 1, "op": "metrics"})
        assert response["ok"] is True
        exposition = response["result"]["exposition"]
        assert response["result"]["format"] == "prometheus"
        # The stack's instrument families are all declared.
        for family in (
            "repro_whatif_calls_total",
            "repro_build_seconds",
            "repro_serve_requests_total",
            "repro_online_polls_total",
        ):
            assert f"# TYPE {family}" in exposition

    def test_json_format(self, frontend):
        response = frontend.handle(
            {"id": 1, "op": "metrics", "params": {"format": "json"}}
        )
        assert response["ok"] is True
        names = {f["name"] for f in response["result"]["families"]}
        assert "repro_session_recommends_total" in names

    def test_unknown_format_rejected(self, frontend):
        response = frontend.handle(
            {"id": 1, "op": "metrics", "params": {"format": "xml"}}
        )
        assert response["ok"] is False
        assert "unknown metrics format" in response["error"]["message"]

    def test_recommend_moves_the_counters(self, frontend):
        def value(exposition: str, needle: str) -> float:
            for line in exposition.splitlines():
                if line.startswith(needle):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        before = frontend.handle({"op": "metrics"})["result"]["exposition"]
        assert frontend.handle({"op": "recommend"})["ok"] is True
        after = frontend.handle({"op": "metrics"})["result"]["exposition"]
        needle = "repro_session_recommends_total"
        assert value(after, needle) == value(before, needle) + 1


class TestServerObservability:
    def _run(self, work, **server_kwargs):
        async def boot():
            server = TuningServer(default_catalog="tpch", **server_kwargs)
            await server.start()
            try:
                return await work(server)
            finally:
                await server.stop()

        return asyncio.run(boot())

    def test_request_metrics_recorded_per_op(self):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                await client.call("ping")
                return await client.call("metrics")

        pings_before = SERVE_REQUESTS.labels(op="ping", status="ok").value
        response = self._run(work)
        assert response["ok"] is True
        assert SERVE_REQUESTS.labels(op="ping", status="ok").value == (
            pings_before + 1
        )
        # The scraped exposition includes the ping that just happened.
        assert "repro_serve_requests_total" in response["result"]["exposition"]

    def test_unknown_ops_fold_into_one_label(self):
        """Client-supplied op strings must not mint unbounded label values."""
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                for index in range(3):
                    await client.call(f"no_such_op_{index}")
                return True

        unknown_before = SERVE_REQUESTS.labels(op="unknown", status="error").value
        assert self._run(work) is True
        assert SERVE_REQUESTS.labels(op="unknown", status="error").value == (
            unknown_before + 3
        )

    def test_access_log_emits_structured_lines(self, caplog):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                await client.call("ping")
                return True

        with caplog.at_level(logging.INFO, logger="repro.access"):
            assert self._run(work, access_log=True) is True
        lines = [
            json.loads(record.getMessage())
            for record in caplog.records
            if record.name == "repro.access"
        ]
        ping = next(line for line in lines if line["op"] == "ping")
        assert ping["status"] == "ok"
        assert ping["duration_ms"] >= 0.0
        assert ping["session_id"].startswith("conn-")
        # --access-log turns on per-request root spans, so the logged
        # trace id is a real one, not a placeholder.
        assert len(ping["trace_id"]) == 32

    def test_without_access_log_no_lines_and_no_spans(self, caplog):
        async def work(server):
            async with TuningClient("127.0.0.1", server.port) as client:
                await client.call("ping")
                return True

        with caplog.at_level(logging.INFO, logger="repro.access"):
            assert self._run(work) is True
        assert not [r for r in caplog.records if r.name == "repro.access"]


class TestWatchStatsSurface:
    def test_watch_stats_reports_malformed_and_poll_timings(self):
        frontend = ServeFrontend(default_catalog="tpch", options=_options())
        start = frontend.handle({"op": "watch_start", "params": {
            "window_statements": 50,
        }})
        assert start["ok"] is True, start.get("error")
        stats = frontend.handle({"op": "watch_stats", "params": {
            "statements": ["SELECT region.r_name FROM region", "%%% not sql"],
        }})
        assert stats["ok"] is True, stats.get("error")
        statistics = stats["result"]["statistics"]
        assert statistics["statements_ingested"] == 1
        assert statistics["malformed_lines"] == 1
        assert statistics["poll_count"] == 1
        assert statistics["poll_seconds_total"] > 0.0
        assert statistics["last_poll_seconds"] is not None

        # server_stats' per-session overview carries the same numbers.
        overview = frontend.session_overview()
        watching = next(entry for entry in overview if entry["watching"])
        assert watching["watch"]["malformed_lines"] == 1
        assert watching["watch"]["poll_count"] == 1
        assert watching["watch"]["last_poll_seconds"] is not None
        frontend.handle({"op": "watch_stop"})
