"""Tests for interesting orders and interesting-order combinations."""

import pytest

from repro.optimizer.interesting_orders import (
    InterestingOrderCombination,
    combination_count,
    enumerate_combinations,
    interesting_orders_by_table,
    interesting_orders_for,
)
from repro.query import QueryBuilder
from repro.util.errors import PlanningError
from repro.workloads.tpch_like import tpch_q5_like_query


class TestInterestingOrdersFor:
    def test_join_columns_are_interesting(self, join_query):
        assert "s_customer" in interesting_orders_for(join_query, "sales")
        assert "c_id" in interesting_orders_for(join_query, "customers")

    def test_group_and_order_columns_are_interesting(self, join_query):
        orders = interesting_orders_for(join_query, "customers")
        assert "c_region" in orders

    def test_selected_only_columns_are_not_interesting(self, join_query):
        assert "s_amount" not in interesting_orders_for(join_query, "sales")

    def test_unknown_table_rejected(self, join_query):
        with pytest.raises(PlanningError):
            interesting_orders_for(join_query, "ghost")

    def test_by_table_covers_all_tables(self, join_query):
        by_table = interesting_orders_by_table(join_query)
        assert set(by_table) == set(join_query.tables)


class TestCombination:
    def test_order_lookup(self):
        ioc = InterestingOrderCombination({"a": "x", "b": None})
        assert ioc.order_for("a") == "x"
        assert ioc.order_for("b") is None
        with pytest.raises(PlanningError):
            ioc.order_for("c")

    def test_equality_is_order_insensitive(self):
        assert InterestingOrderCombination({"a": "x", "b": None}) == InterestingOrderCombination(
            {"b": None, "a": "x"}
        )

    def test_hashable(self):
        a = InterestingOrderCombination({"a": "x"})
        b = InterestingOrderCombination({"a": "x"})
        assert len({a, b}) == 1

    def test_non_empty_orders(self):
        ioc = InterestingOrderCombination({"a": "x", "b": None, "c": "y"})
        assert ioc.non_empty_orders == frozenset({("a", "x"), ("c", "y")})
        assert ioc.order_count == 2

    def test_subset_relation(self):
        small = InterestingOrderCombination({"a": "x", "b": None})
        large = InterestingOrderCombination({"a": "x", "b": "y"})
        assert small.is_subset_of(large)
        assert not large.is_subset_of(small)
        assert small.is_subset_of(small)

    def test_restricted_to(self):
        ioc = InterestingOrderCombination({"a": "x", "b": "y"})
        restricted = ioc.restricted_to(["a"])
        assert restricted.as_dict() == {"a": "x"}
        with pytest.raises(PlanningError):
            ioc.restricted_to([])

    def test_merged_with_disjoint(self):
        left = InterestingOrderCombination({"a": "x"})
        right = InterestingOrderCombination({"b": None})
        merged = left.merged_with(right)
        assert merged.as_dict() == {"a": "x", "b": None}

    def test_merged_with_conflict_rejected(self):
        left = InterestingOrderCombination({"a": "x"})
        right = InterestingOrderCombination({"a": "y"})
        with pytest.raises(PlanningError):
            left.merged_with(right)

    def test_empty_rejected(self):
        with pytest.raises(PlanningError):
            InterestingOrderCombination({})


class TestEnumeration:
    def test_count_formula(self, join_query):
        combinations = enumerate_combinations(join_query)
        assert len(combinations) == combination_count(join_query)
        assert len(set(combinations)) == len(combinations)

    def test_single_table_no_orders(self, small_catalog):
        query = QueryBuilder("q").select("sales.s_amount").from_tables("sales").build()
        combinations = enumerate_combinations(query)
        assert len(combinations) == 1
        assert combinations[0].order_for("sales") is None

    def test_paper_example_648(self):
        """Section IV: the TPC-H query 5 shape yields 648 combinations."""
        query = tpch_q5_like_query()
        assert combination_count(query) == 648
        assert len(enumerate_combinations(query)) == 648

    def test_every_combination_has_all_tables(self, join_query):
        for ioc in enumerate_combinations(join_query):
            assert set(ioc.tables) == set(join_query.tables)
