"""Tests for the page/tuple layout arithmetic."""

import pytest

from repro.storage import pages


class TestAlignTo:
    def test_already_aligned(self):
        assert pages.align_to(8, 8) == 8

    def test_rounds_up(self):
        assert pages.align_to(9, 8) == 16
        assert pages.align_to(1, 4) == 4

    def test_zero_width(self):
        assert pages.align_to(0, 8) == 0

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            pages.align_to(8, 0)

    def test_negative_width(self):
        with pytest.raises(ValueError):
            pages.align_to(-1, 8)


class TestTupleWidths:
    def test_heap_tuple_includes_header(self):
        width = pages.heap_tuple_width([(4, 4), (8, 8)])
        assert width >= pages.HEAP_TUPLE_HEADER_BYTES + 12

    def test_alignment_padding_counted(self):
        # A 4-byte int followed by an 8-byte value forces 4 bytes of padding.
        padded = pages.heap_tuple_width([(4, 4), (8, 8)])
        packed = pages.heap_tuple_width([(8, 8), (4, 4)])
        assert padded >= packed

    def test_index_tuple_smaller_header_than_heap(self):
        columns = [(8, 8)]
        assert pages.index_tuple_width(columns) < pages.heap_tuple_width(columns)


class TestHeapPages:
    def test_empty_table_occupies_one_page(self):
        assert pages.heap_pages(0, 100) == 1

    def test_single_row(self):
        assert pages.heap_pages(1, 100) == 1

    def test_scales_linearly(self):
        small = pages.heap_pages(10_000, 100)
        large = pages.heap_pages(20_000, 100)
        assert 1.9 < large / small < 2.1

    def test_wider_rows_need_more_pages(self):
        assert pages.heap_pages(10_000, 200) > pages.heap_pages(10_000, 100)

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            pages.heap_pages(-1, 100)

    def test_tuples_per_page_positive(self):
        assert pages.tuples_per_heap_page(100) >= 1
        # Even a huge tuple fits "once" per page under this simplified model.
        assert pages.tuples_per_heap_page(100_000) == 1

    def test_tuples_per_page_invalid_width(self):
        with pytest.raises(ValueError):
            pages.tuples_per_heap_page(0)


class TestBtreePages:
    def test_leaf_pages_scale_with_rows(self):
        small = pages.btree_leaf_pages(100_000, 20)
        large = pages.btree_leaf_pages(1_000_000, 20)
        assert 9 < large / small < 11

    def test_leaf_pages_at_least_one(self):
        assert pages.btree_leaf_pages(0, 20) == 1
        assert pages.btree_leaf_pages(1, 20) == 1

    def test_internal_pages_zero_for_single_leaf(self):
        assert pages.btree_internal_pages(1, 8) == 0
        assert pages.btree_internal_pages(0, 8) == 0

    def test_internal_pages_small_fraction_of_leaves(self):
        leaves = pages.btree_leaf_pages(10_000_000, 16)
        internal = pages.btree_internal_pages(leaves, 8)
        assert internal > 0
        # The paper ignores internal pages because they are a tiny fraction.
        assert internal < leaves * 0.05

    def test_internal_pages_negative_rejected(self):
        with pytest.raises(ValueError):
            pages.btree_internal_pages(-1, 8)

    def test_leaf_pages_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            pages.btree_leaf_pages(-5, 8)
