"""Tests for in-memory relations and the sorted index structure."""

import pytest

from repro.catalog.schema import Column, ColumnType, Table
from repro.catalog.index import Index
from repro.storage.btree import SortedIndexData
from repro.storage.relation import RelationData
from repro.util.errors import ExecutionError


@pytest.fixture
def table():
    return Table("t", [Column("id", ColumnType.BIGINT), Column("v", ColumnType.INTEGER)],
                 primary_key="id")


@pytest.fixture
def relation(table):
    rows = [{"id": i, "v": (i * 7) % 10} for i in range(1, 101)]
    return RelationData(table, rows)


class TestRelationData:
    def test_row_count(self, relation):
        assert relation.row_count == 100
        assert len(relation) == 100

    def test_insert_missing_column_rejected(self, table):
        relation = RelationData(table)
        with pytest.raises(ExecutionError):
            relation.insert({"id": 1})

    def test_insert_extra_column_rejected(self, table):
        relation = RelationData(table)
        with pytest.raises(ExecutionError):
            relation.insert({"id": 1, "v": 2, "zz": 3})

    def test_scan_returns_copies(self, relation):
        first = next(relation.scan())
        first["v"] = 999
        assert next(relation.scan())["v"] != 999

    def test_column_values(self, relation):
        values = relation.column_values("id")
        assert values[0] == 1
        assert len(values) == 100

    def test_column_values_unknown_column(self, relation):
        with pytest.raises(ExecutionError):
            relation.column_values("zz")

    def test_fetch_by_position(self, relation):
        rows = relation.fetch([0, 99])
        assert rows[0]["id"] == 1
        assert rows[1]["id"] == 100

    def test_fetch_out_of_range(self, relation):
        with pytest.raises(ExecutionError):
            relation.fetch([100])

    def test_heap_pages_positive(self, relation):
        assert relation.heap_pages >= 1


class TestSortedIndexData:
    def test_entries_sorted_by_key(self, table, relation):
        index = SortedIndexData(Index("t", ["v"]), relation)
        keys = [key for key, _ in index.scan_ordered()]
        assert keys == sorted(keys)
        assert index.entry_count == 100

    def test_positions_equal(self, table, relation):
        index = SortedIndexData(Index("t", ["v"]), relation)
        positions = index.positions_equal(3)
        values = {relation.fetch([p])[0]["v"] for p in positions}
        assert values == {3}

    def test_positions_range(self, table, relation):
        index = SortedIndexData(Index("t", ["id"]), relation)
        positions = index.positions_range(10, 20)
        ids = sorted(relation.fetch([p])[0]["id"] for p in positions)
        assert ids == list(range(10, 21))

    def test_positions_range_open_ended(self, table, relation):
        index = SortedIndexData(Index("t", ["id"]), relation)
        assert len(index.positions_range(None, None)) == 100
        assert len(index.positions_range(91, None)) == 10

    def test_positions_range_exclusive_bounds(self, table, relation):
        index = SortedIndexData(Index("t", ["id"]), relation)
        positions = index.positions_range(10, 20, low_inclusive=False, high_inclusive=False)
        ids = sorted(relation.fetch([p])[0]["id"] for p in positions)
        assert ids == list(range(11, 20))

    def test_rows_ordered_projection(self, table, relation):
        index = SortedIndexData(Index("t", ["v"]), relation)
        rows = list(index.rows_ordered(columns=["v"]))
        assert all(set(row) == {"v"} for row in rows)
        assert [row["v"] for row in rows] == sorted(row["v"] for row in rows)

    def test_mismatched_table_rejected(self, relation):
        with pytest.raises(ExecutionError):
            SortedIndexData(Index("other", ["v"]), relation)

    def test_leaf_pages_positive(self, table, relation):
        index = SortedIndexData(Index("t", ["v"]), relation)
        assert index.leaf_pages >= 1
