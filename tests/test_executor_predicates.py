"""Tests for executor-side predicate evaluation over qualified rows."""

import pytest

from repro.executor.predicates import (
    apply_predicates,
    predicate_matches,
    qualified,
    qualify_row,
)
from repro.query.ast import ColumnRef, Comparison, Predicate
from repro.util.errors import ExecutionError


def predicate(op, value, value2=None, column="a"):
    return Predicate(ColumnRef("t", column), op, value, value2)


class TestQualification:
    def test_qualified_key_format(self):
        assert qualified("t", "a") == "t.a"

    def test_qualify_row(self):
        assert qualify_row("t", {"a": 1, "b": 2}) == {"t.a": 1, "t.b": 2}


class TestPredicateMatches:
    def test_all_comparisons(self):
        row = {"t.a": 5}
        assert predicate_matches(predicate(Comparison.EQ, 5), row)
        assert predicate_matches(predicate(Comparison.NE, 4), row)
        assert predicate_matches(predicate(Comparison.LT, 6), row)
        assert predicate_matches(predicate(Comparison.LE, 5), row)
        assert predicate_matches(predicate(Comparison.GT, 4), row)
        assert predicate_matches(predicate(Comparison.GE, 5), row)
        assert predicate_matches(predicate(Comparison.BETWEEN, 4, 6), row)

    def test_non_matching(self):
        row = {"t.a": 10}
        assert not predicate_matches(predicate(Comparison.EQ, 5), row)
        assert not predicate_matches(predicate(Comparison.BETWEEN, 1, 9), row)
        assert not predicate_matches(predicate(Comparison.LT, 10), row)

    def test_null_value_never_matches(self):
        row = {"t.a": None}
        assert not predicate_matches(predicate(Comparison.EQ, 5), row)
        assert not predicate_matches(predicate(Comparison.NE, 5), row)

    def test_missing_column_raises(self):
        with pytest.raises(ExecutionError):
            predicate_matches(predicate(Comparison.EQ, 5), {"t.b": 1})


class TestApplyPredicates:
    def test_conjunction(self):
        rows = [{"t.a": i, "t.b": i * 2} for i in range(10)]
        predicates = [
            predicate(Comparison.GE, 3),
            Predicate(ColumnRef("t", "b"), Comparison.LT, 14),
        ]
        filtered = apply_predicates(predicates, rows)
        assert [row["t.a"] for row in filtered] == [3, 4, 5, 6]

    def test_empty_predicate_list_returns_all(self):
        rows = [{"t.a": 1}, {"t.a": 2}]
        assert apply_predicates([], rows) == rows

    def test_no_matches(self):
        rows = [{"t.a": 1}]
        assert apply_predicates([predicate(Comparison.GT, 100)], rows) == []
