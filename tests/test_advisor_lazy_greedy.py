"""Tests for the lazy (CELF) greedy selector and the incremental evaluator."""

import pytest

from repro.advisor import AdvisorOptions, IndexAdvisor
from repro.advisor.benefit import (
    CacheBackedWorkloadCostModel,
    IncrementalWorkloadEvaluator,
    OptimizerWorkloadCostModel,
)
from repro.advisor.candidates import CandidateGenerator
from repro.advisor.greedy import GreedySelector
from repro.advisor.lazy_greedy import LazyGreedySelector
from repro.catalog.index import Index
from repro.optimizer import Optimizer
from repro.util.errors import AdvisorError
from repro.util.units import megabytes


@pytest.fixture
def workload(join_query, simple_query):
    return [join_query, simple_query]


@pytest.fixture
def candidates(small_catalog, workload):
    return CandidateGenerator(small_catalog).for_workload(workload)


@pytest.fixture
def model(small_catalog, workload, candidates):
    return CacheBackedWorkloadCostModel(
        Optimizer(small_catalog), workload, candidates, mode="pinum"
    )


def _step_keys(steps):
    return [
        (step.chosen.key, step.workload_cost_before, step.workload_cost_after,
         step.cumulative_size_bytes)
        for step in steps
    ]


class TestLazyMatchesExhaustive:
    @pytest.mark.parametrize("budget_mb", [8, 64, 512])
    def test_identical_selection_steps(self, small_catalog, model, candidates, budget_mb):
        budget = megabytes(budget_mb)
        exhaustive = GreedySelector(small_catalog, model, budget).select(candidates)
        lazy = LazyGreedySelector(small_catalog, model, budget).select(candidates)
        assert _step_keys(lazy) == _step_keys(exhaustive)

    def test_incremental_matches_full_reevaluation(self, small_catalog, model, candidates):
        budget = megabytes(512)
        full = GreedySelector(small_catalog, model, budget, incremental=False).select(candidates)
        delta = GreedySelector(small_catalog, model, budget, incremental=True).select(candidates)
        assert _step_keys(delta) == _step_keys(full)

    def test_engines_agree_on_selection(self, small_catalog, model, candidates):
        # Engines may permute picks whose benefits are *exactly* tied (the
        # vectorized sums can land a tie one ulp apart), so the selected
        # sets are compared, not the sequences.
        budget = megabytes(512)
        picks = {}
        for engine in ("scalar", "python", "auto"):
            model.select_engine(engine)
            steps = LazyGreedySelector(small_catalog, model, budget).select(candidates)
            picks[engine] = {step.chosen.key for step in steps}
        assert picks["scalar"] == picks["python"] == picks["auto"]

    def test_matches_with_optimizer_cost_model(self, small_catalog, workload, candidates):
        model = OptimizerWorkloadCostModel(Optimizer(small_catalog), workload)
        budget = megabytes(512)
        subset = candidates[:10]
        exhaustive = GreedySelector(small_catalog, model, budget).select(subset)
        lazy = LazyGreedySelector(small_catalog, model, budget).select(subset)
        assert _step_keys(lazy) == _step_keys(exhaustive)

    def test_duplicate_candidates_collapse(self, small_catalog, model, candidates):
        budget = megabytes(512)
        doubled = list(candidates) + list(candidates)
        exhaustive = GreedySelector(small_catalog, model, budget).select(doubled)
        lazy = LazyGreedySelector(small_catalog, model, budget).select(doubled)
        assert _step_keys(lazy) == _step_keys(exhaustive)


class TestLazyEfficiency:
    def test_fewer_evaluations_than_exhaustive(self, small_catalog, model, candidates):
        budget = megabytes(512)
        exhaustive = GreedySelector(small_catalog, model, budget)
        exhaustive.select(candidates)
        lazy = LazyGreedySelector(small_catalog, model, budget)
        lazy.select(candidates)
        assert (
            lazy.statistics.candidate_evaluations
            <= exhaustive.statistics.candidate_evaluations
        )
        assert lazy.statistics.seconds >= 0.0
        assert lazy.statistics.query_evaluations > 0

    def test_oversized_candidates_pruned_permanently(self, small_catalog, model, candidates):
        selector = LazyGreedySelector(small_catalog, model, space_budget_bytes=1024)
        assert selector.select(candidates) == []
        assert selector.statistics.pruned_for_space == len(
            {candidate.key for candidate in candidates}
        )
        assert selector.statistics.candidate_evaluations == 0

    def test_exhaustive_prunes_oversized_once(self, small_catalog, model, candidates):
        selector = GreedySelector(small_catalog, model, space_budget_bytes=1024)
        assert selector.select(candidates) == []
        # Every candidate is pruned exactly once (first iteration), not per
        # iteration as the pre-pruning loop did.
        assert selector.statistics.pruned_for_space == len(candidates)
        assert selector.statistics.candidate_evaluations == 0

    def test_invalid_budget_rejected(self, small_catalog, model):
        with pytest.raises(AdvisorError):
            LazyGreedySelector(small_catalog, model, 0)


class TestIncrementalEvaluator:
    def test_delta_total_matches_workload_cost(self, model, candidates):
        evaluator = IncrementalWorkloadEvaluator(model)
        assert evaluator.total == model.workload_cost([])
        candidate = candidates[0]
        assert evaluator.cost_with([], candidate) == model.workload_cost([candidate])

    def test_commit_advances_the_baseline(self, model, candidates):
        evaluator = IncrementalWorkloadEvaluator(model)
        first = candidates[0]
        cost_with_first = evaluator.cost_with([], first)
        evaluator.commit([first], first)
        assert evaluator.total == cost_with_first
        assert evaluator.per_query_costs() == model.per_query_costs([first])

    def test_irrelevant_table_short_circuits(self, model):
        evaluator = IncrementalWorkloadEvaluator(model)
        before = model.query_evaluations
        stranger = Index("nowhere", ["nothing"])
        assert evaluator.cost_with([], stranger) == evaluator.total
        assert model.query_evaluations == before


class TestAdvisorSelectorOption:
    def test_lazy_and_exhaustive_recommendations_match(self, small_catalog, workload):
        results = {}
        for selector in ("lazy", "exhaustive"):
            advisor = IndexAdvisor(
                small_catalog,
                Optimizer(small_catalog),
                AdvisorOptions(space_budget_bytes=megabytes(512), selector=selector),
            )
            results[selector] = advisor.recommend(workload)
        lazy, exhaustive = results["lazy"], results["exhaustive"]
        assert [i.key for i in lazy.selected_indexes] == [
            i.key for i in exhaustive.selected_indexes
        ]
        assert lazy.workload_cost_after == exhaustive.workload_cost_after
        assert (
            lazy.selection_candidate_evaluations
            <= exhaustive.selection_candidate_evaluations
        )

    def test_selection_stats_reported(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(512)),
        )
        result = advisor.recommend(workload)
        assert result.selector == "lazy"
        assert result.engine in ("numpy", "python")
        assert result.selection_seconds >= 0.0
        assert result.selection_candidate_evaluations > 0
        assert result.selection_query_evaluations > 0
        assert "selection phase" in result.summary()

    def test_unknown_selector_rejected(self, small_catalog):
        with pytest.raises(AdvisorError):
            IndexAdvisor(
                small_catalog,
                Optimizer(small_catalog),
                AdvisorOptions(selector="random"),
            )

    def test_scalar_engine_option_accepted(self, small_catalog, workload):
        advisor = IndexAdvisor(
            small_catalog,
            Optimizer(small_catalog),
            AdvisorOptions(space_budget_bytes=megabytes(512), engine="scalar"),
        )
        result = advisor.recommend(workload)
        assert result.selected_indexes

    def test_unknown_engine_rejected_before_cache_build(self, small_catalog):
        with pytest.raises(AdvisorError):
            IndexAdvisor(
                small_catalog,
                Optimizer(small_catalog),
                AdvisorOptions(space_budget_bytes=megabytes(512), engine="gpu"),
            )
