"""Tests for the compiled (vectorized) cache evaluation engines."""

import pytest

from repro.catalog.index import Index
from repro.inum import InumCacheBuilder, InumCostModel, compile_cache, numpy_available
from repro.inum import compiled as compiled_module
from repro.inum.compiled import IndexSetMemo
from repro.optimizer import Optimizer
from repro.pinum import PinumCacheBuilder
from repro.util.errors import PlanningError


@pytest.fixture
def candidates():
    return [
        Index("sales", ["s_customer"]),
        Index("sales", ["s_product"]),
        Index("sales", ["s_customer", "s_amount", "s_product"]),
        Index("customers", ["c_id"]),
        Index("customers", ["c_region", "c_id"]),
        Index("products", ["p_id"]),
        Index("products", ["p_category", "p_id", "p_price"]),
    ]


@pytest.fixture
def cache(small_catalog, join_query, candidates):
    return InumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)


def _backends():
    backends = ["python"]
    if numpy_available():
        backends.append("numpy")
    return backends


class TestBackendSelection:
    def test_auto_prefers_numpy_when_available(self, cache):
        engine = compile_cache(cache, backend="auto")
        expected = "numpy" if numpy_available() else "python"
        assert engine.backend == expected

    def test_python_backend_forced(self, cache):
        assert compile_cache(cache, backend="python").backend == "python"

    def test_unknown_backend_rejected(self, cache):
        with pytest.raises(PlanningError):
            compile_cache(cache, backend="fortran")

    def test_auto_degrades_without_numpy(self, cache, monkeypatch):
        monkeypatch.setattr(compiled_module, "_np", None)
        assert not compiled_module.numpy_available()
        assert compile_cache(cache, backend="auto").backend == "python"

    def test_numpy_backend_requires_numpy(self, cache, monkeypatch):
        monkeypatch.setattr(compiled_module, "_np", None)
        with pytest.raises(PlanningError):
            compile_cache(cache, backend="numpy")


class TestAgainstScalarModel:
    @pytest.mark.parametrize("backend", _backends())
    def test_matches_scalar_on_subsets(self, cache, candidates, backend):
        scalar = InumCostModel(cache)
        engine = compile_cache(cache, backend=backend)
        subsets = [
            [],
            candidates[:1],
            candidates[:3],
            candidates,
            [candidates[4], candidates[0], candidates[6]],
        ]
        for subset in subsets:
            expected_cost, expected_entry = scalar.estimate_with_indexes_detail(subset)
            detail = engine.estimate_detail(subset)
            assert detail.cost == pytest.approx(expected_cost, rel=1e-9, abs=1e-9)
            assert detail.entry is expected_entry
            assert engine.estimate(subset) == detail.cost

    @pytest.mark.parametrize("backend", _backends())
    def test_matches_pinum_cache_too(self, small_catalog, join_query, candidates, backend):
        cache = PinumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
        scalar = InumCostModel(cache)
        engine = compile_cache(cache, backend=backend)
        for subset in ([], candidates[:2], candidates):
            assert engine.estimate(subset) == pytest.approx(
                scalar.estimate_with_indexes(subset), rel=1e-9, abs=1e-9
            )

    @pytest.mark.parametrize("backend", _backends())
    def test_unknown_indexes_ignored(self, cache, backend):
        engine = compile_cache(cache, backend=backend)
        stranger = Index("sales", ["s_quantity", "s_amount"])
        assert engine.estimate([stranger]) == engine.estimate([])

    @pytest.mark.parametrize("backend", _backends())
    def test_batch_matches_single_evaluations(self, cache, candidates, backend):
        engine = compile_cache(cache, backend=backend)
        sets = [[], candidates[:1], candidates[:4], candidates]
        batch = engine.estimate_batch(sets)
        assert batch == [engine.estimate(s) for s in sets]
        assert engine.estimate_batch([]) == []

    @pytest.mark.parametrize("backend", _backends())
    def test_entry_costs_consistent_with_detail(self, cache, candidates, backend):
        engine = compile_cache(cache, backend=backend)
        costs = engine.entry_costs(candidates)
        detail = engine.estimate_detail(candidates)
        assert len(costs) == engine.entry_count
        assert min(costs) == detail.cost
        assert costs.index(min(costs)) == detail.entry_position


class TestIndexSetMemo:
    def test_builds_once_per_signature(self):
        calls = []

        def build(indexes):
            calls.append(list(indexes))
            return len(indexes)

        memo = IndexSetMemo(build)
        a, b = Index("sales", ["s_customer"]), Index("sales", ["s_product"])
        assert memo.get([a, b]) == 2
        # Same set in a different order (and as distinct objects) hits.
        assert memo.get([Index("sales", ["s_product"]), Index("sales", ["s_customer"])]) == 2
        assert len(calls) == 1
        assert memo.get([a]) == 1
        assert len(calls) == 2

    def test_overflow_clears_instead_of_growing(self):
        memo = IndexSetMemo(lambda indexes: len(indexes), max_entries=2)
        for table in ("sales", "customers", "products"):
            memo.get([Index(table, ["column"])])
        assert len(memo) <= 2
