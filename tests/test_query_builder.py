"""Tests for the fluent query builder."""

import pytest

from repro.query import QueryBuilder
from repro.query.ast import Comparison
from repro.util.errors import QueryError


class TestQueryBuilder:
    def test_minimal_query(self):
        query = QueryBuilder("q").select("t.a").from_tables("t").build()
        assert query.tables == ("t",)
        assert str(query.select_columns[0]) == "t.a"

    def test_join_adds_tables_implicitly(self):
        query = QueryBuilder("q").select("a.x").join("a.id", "b.a_id").build()
        assert set(query.tables) == {"a", "b"}
        assert len(query.joins) == 1

    def test_where_with_operator_strings(self):
        query = (
            QueryBuilder("q")
            .select("t.a")
            .from_tables("t")
            .where("t.a", "<=", 10)
            .where("t.b", ">", 1)
            .build()
        )
        ops = {f.op for f in query.filters}
        assert ops == {Comparison.LE, Comparison.GT}

    def test_where_between_shorthand(self):
        query = (
            QueryBuilder("q").select("t.a").from_tables("t").where_between("t.a", 1, 5).build()
        )
        assert query.filters[0].op is Comparison.BETWEEN
        assert query.filters[0].value2 == 5

    def test_aggregate_and_group_by(self):
        query = (
            QueryBuilder("q")
            .aggregate("sum", "t.amount")
            .select("t.region")
            .from_tables("t")
            .group_by("t.region")
            .build()
        )
        assert query.has_aggregation
        assert str(query.aggregates[0]) == "sum(t.amount)"

    def test_count_star(self):
        query = QueryBuilder("q").aggregate("count").from_tables("t").build()
        assert str(query.aggregates[0]) == "count(*)"

    def test_order_by_descending(self):
        query = QueryBuilder("q").select("t.a").from_tables("t").order_by("t.a", descending=True).build()
        assert query.order_by[0].descending

    def test_bad_column_reference(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").select("no_dot_here")

    def test_bad_operator(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").where("t.a", "~~", 3)

    def test_bad_aggregate(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").aggregate("median", "t.a")

    def test_empty_table_name(self):
        with pytest.raises(QueryError):
            QueryBuilder("q").from_tables("")

    def test_duplicate_from_tables_ignored(self):
        query = QueryBuilder("q").select("t.a").from_tables("t", "t").build()
        assert query.tables == ("t",)
