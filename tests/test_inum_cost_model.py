"""Tests for the cache-based cost model (INUM estimation arithmetic)."""

import pytest

from repro.catalog.index import Index
from repro.inum import AtomicConfiguration, InumCacheBuilder, InumCostModel
from repro.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.util.errors import PlanningError


@pytest.fixture
def candidates():
    return [
        Index("sales", ["s_customer"]),
        Index("sales", ["s_product"]),
        Index("sales", ["s_customer", "s_amount", "s_product"]),
        Index("customers", ["c_id"]),
        Index("customers", ["c_region", "c_id"]),
        Index("products", ["p_id"]),
        Index("products", ["p_category", "p_id", "p_price"]),
    ]


@pytest.fixture
def cost_model(small_catalog, join_query, candidates):
    cache = InumCacheBuilder(Optimizer(small_catalog)).build_cache(join_query, candidates)
    return InumCostModel(cache)


class TestEstimation:
    def test_empty_configuration_matches_optimizer(self, small_catalog, join_query, cost_model):
        actual = WhatIfOptimizer(Optimizer(small_catalog)).cost_with_configuration(join_query, [])
        assert cost_model.estimate_empty() == pytest.approx(actual, rel=0.01)

    def test_estimation_requires_no_optimizer_calls(self, small_catalog, join_query, candidates):
        optimizer = Optimizer(small_catalog)
        cache = InumCacheBuilder(optimizer).build_cache(join_query, candidates)
        model = InumCostModel(cache)
        optimizer.reset_counters()
        model.estimate(AtomicConfiguration([candidates[0], candidates[3]]))
        model.estimate_empty()
        assert optimizer.call_count == 0

    def test_estimates_track_optimizer_for_atomic_configs(
        self, small_catalog, join_query, candidates, cost_model
    ):
        whatif = WhatIfOptimizer(Optimizer(small_catalog))
        configurations = [
            AtomicConfiguration([]),
            AtomicConfiguration([candidates[0]]),
            AtomicConfiguration([candidates[2], candidates[3]]),
            AtomicConfiguration([candidates[2], candidates[4], candidates[6]]),
        ]
        for configuration in configurations:
            actual = whatif.cost_with_configuration(join_query, configuration.indexes)
            estimate = cost_model.estimate(configuration)
            assert estimate == pytest.approx(actual, rel=0.15)

    def test_better_configuration_never_estimated_worse(self, candidates, cost_model):
        weak = AtomicConfiguration([candidates[0]])
        strong = AtomicConfiguration([candidates[2], candidates[4], candidates[6]])
        assert cost_model.estimate(strong) <= cost_model.estimate(weak) * 1.05

    def test_estimate_detail_reports_breakdown(self, candidates, cost_model, join_query):
        detail = cost_model.estimate_detail(AtomicConfiguration([candidates[0]]))
        assert set(detail.access_breakdown) == set(join_query.tables)
        assert detail.cost == pytest.approx(
            detail.entry.internal_cost + sum(detail.access_breakdown.values())
        )

    def test_unknown_index_falls_back_to_heap(self, cost_model):
        stranger = Index("sales", ["s_quantity", "s_amount"])
        estimate = cost_model.estimate(AtomicConfiguration([stranger]))
        assert estimate >= cost_model.estimate_empty() * 0.5

    def test_best_configuration_picks_cheapest(self, candidates, cost_model):
        configs = [
            AtomicConfiguration([]),
            AtomicConfiguration([candidates[2], candidates[4], candidates[6]]),
        ]
        assert cost_model.best_configuration(configs) == configs[1]

    def test_best_configuration_empty_list_rejected(self, cost_model):
        with pytest.raises(PlanningError):
            cost_model.best_configuration([])


class TestIndexSetEstimation:
    def test_multiple_indexes_per_table_allowed(self, candidates, cost_model):
        cost = cost_model.estimate_with_indexes(candidates)
        assert cost <= cost_model.estimate_empty()

    def test_monotone_in_index_set(self, candidates, cost_model):
        """Adding indexes can only help (the model picks the per-slot minimum)."""
        subset_cost = cost_model.estimate_with_indexes(candidates[:2])
        full_cost = cost_model.estimate_with_indexes(candidates)
        assert full_cost <= subset_cost + 1e-9

    def test_empty_index_set_matches_estimate_empty(self, cost_model):
        assert cost_model.estimate_with_indexes([]) == pytest.approx(cost_model.estimate_empty())
