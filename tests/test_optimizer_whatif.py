"""Tests for the what-if optimizer interface."""

import pytest

from repro.catalog.index import Index
from repro.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer


@pytest.fixture
def whatif(small_catalog):
    return WhatIfOptimizer(Optimizer(small_catalog))


class TestConfigurationProbing:
    def test_empty_configuration_matches_plain_cost(self, whatif, join_query):
        plain = whatif.optimizer.optimize(join_query).cost
        probed = whatif.cost_with_configuration(join_query, [])
        assert probed == pytest.approx(plain)

    def test_useful_index_reduces_cost(self, whatif, join_query):
        covering = Index("products", ["p_category", "p_id", "p_price"])
        with_index = whatif.cost_with_configuration(join_query, [covering])
        without = whatif.cost_with_configuration(join_query, [])
        assert with_index <= without

    def test_exclusive_hides_permanent_indexes(self, small_catalog, join_query):
        whatif = WhatIfOptimizer(Optimizer(small_catalog))
        helpful = Index("products", ["p_category", "p_id", "p_price"])
        small_catalog.add_index(helpful)
        with_permanent = whatif.cost_with_configuration(join_query, [], exclusive=False)
        hidden = whatif.cost_with_configuration(join_query, [], exclusive=True)
        assert hidden >= with_permanent

    def test_catalog_unchanged_after_probe(self, small_catalog, whatif, join_query):
        whatif.cost_with_configuration(join_query, [Index("sales", ["s_customer"])])
        assert small_catalog.all_indexes() == []

    def test_probes_count_as_optimizer_calls(self, whatif, join_query):
        before = whatif.optimizer.call_count
        whatif.cost_with_configuration(join_query, [])
        whatif.cost_with_configuration(join_query, [Index("sales", ["s_customer"])])
        assert whatif.optimizer.call_count == before + 2

    def test_nestloop_flag_forwarded(self, small_catalog, whatif, join_query):
        index = Index("customers", ["c_id"])
        result = whatif.optimize_with_configuration(
            join_query, [index], enable_nestloop=False
        )
        assert not result.plan.uses_nested_loop()

    def test_whatif_and_materialized_costs_close(self, whatif, join_query):
        """Section VI-B: what-if indexes track real index costs within ~1%."""
        indexes = [
            Index("sales", ["s_customer", "s_amount", "s_product"]),
            Index("products", ["p_category", "p_id", "p_price"]),
        ]
        hypothetical = whatif.cost_with_configuration(join_query, indexes)
        materialized = whatif.cost_with_configuration(
            join_query, [index.materialized() for index in indexes]
        )
        assert hypothetical == pytest.approx(materialized, rel=0.02)
        # The what-if estimate ignores internal pages, so it never overshoots.
        assert hypothetical <= materialized + 1e-9
