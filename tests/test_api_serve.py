"""Tests for the newline-delimited-JSON serve frontend."""

import io
import json

import pytest

from repro.advisor import AdvisorOptions
from repro.api.serve import ServeFrontend
from repro.util.errors import AdvisorError
from repro.util.units import megabytes


@pytest.fixture
def frontend():
    """A frontend over the (fast) TPC-H-like catalog with a small budget."""
    return ServeFrontend(
        default_catalog="tpch",
        options=AdvisorOptions(space_budget_bytes=megabytes(512), max_candidates=20),
    )


class TestDispatch:
    def test_ping(self, frontend):
        response = frontend.handle({"id": 1, "op": "ping"})
        assert response == {"id": 1, "ok": True, "op": "ping",
                            "result": {"pong": True, "sessions": 0}}

    def test_sessions_are_created_lazily_and_kept(self, frontend):
        assert frontend.session_count == 0
        frontend.handle({"op": "workload"})
        assert frontend.session_count == 1
        frontend.handle({"op": "workload"})
        assert frontend.session_count == 1

    def test_workload_starts_with_builtin_queries(self, frontend):
        response = frontend.handle({"id": 2, "op": "workload"})
        assert response["ok"] is True
        names = [query["name"] for query in response["result"]["queries"]]
        assert names == ["tpch_q5_like", "tpch_small_join"]

    def test_recommend_and_warm_rerun(self, frontend):
        first = frontend.handle({"id": 3, "op": "recommend"})
        assert first["ok"] is True
        assert first["result"]["selected_indexes"]
        assert first["result"]["session"]["caches_built"] == 2
        second = frontend.handle({"id": 4, "op": "recommend"})
        assert second["result"]["session"]["caches_built"] == 0
        assert second["result"]["session"]["caches_reused"] == 2
        assert second["result"]["selected_indexes"] == first["result"]["selected_indexes"]

    def test_add_remove_queries_and_stats(self, frontend):
        added = frontend.handle({"op": "add_queries", "params": {"queries": [
            {"sql": "SELECT orders.o_totalprice FROM orders "
                    "WHERE orders.o_totalprice < 500 ORDER BY orders.o_totalprice",
             "name": "cheap_orders"},
        ]}})
        assert added["ok"] is True
        assert added["result"] == {"added": ["cheap_orders"], "workload_size": 3}
        removed = frontend.handle({"op": "remove_queries", "params": {"names": ["cheap_orders"]}})
        assert removed["result"]["workload_size"] == 2
        stats = frontend.handle({"op": "stats"})
        assert stats["ok"] is True
        assert stats["result"]["recommend_calls"] == 0

    def test_evaluate_and_what_if(self, frontend):
        frontend.handle({"op": "recommend"})
        index = {"table": "orders", "columns": ["o_orderdate", "o_custkey"]}
        evaluated = frontend.handle({"op": "evaluate", "params": {"indexes": [index]}})
        assert evaluated["ok"] is True
        assert evaluated["result"]["total_cost"] > 0
        what_if = frontend.handle({"op": "what_if", "params": {"indexes": [index]}})
        assert what_if["ok"] is True
        assert what_if["result"]["total_cost"] > 0

    def test_explain(self, frontend):
        response = frontend.handle({"op": "explain", "params": {"query": "tpch_small_join"}})
        assert response["ok"] is True
        assert "Scan" in response["result"]["plan"]

    def test_set_budget(self, frontend):
        response = frontend.handle(
            {"op": "set_budget", "params": {"space_budget_bytes": megabytes(64)}}
        )
        assert response["ok"] is True
        workload = frontend.handle({"op": "workload"})
        assert workload["result"]["space_budget_bytes"] == megabytes(64)


class TestErrors:
    def test_unknown_operation(self, frontend):
        response = frontend.handle({"id": 9, "op": "bogus"})
        assert response["ok"] is False
        assert response["id"] == 9
        assert "unknown operation" in response["error"]["message"]

    def test_missing_op(self, frontend):
        response = frontend.handle({"id": 1})
        assert response["ok"] is False

    def test_malformed_json_line(self, frontend):
        response = json.loads(frontend.handle_line("this is not json"))
        assert response["ok"] is False
        assert response["id"] is None
        assert "not valid JSON" in response["error"]["message"]

    def test_non_object_request(self, frontend):
        response = json.loads(frontend.handle_line("[1, 2, 3]"))
        assert response["ok"] is False

    def test_domain_error_becomes_response_not_crash(self, frontend):
        response = frontend.handle({"op": "explain", "params": {"query": "missing"}})
        assert response["ok"] is False
        assert response["error"]["type"] == "AdvisorError"

    def test_unknown_catalog_rejected(self):
        with pytest.raises(AdvisorError, match="unknown catalog"):
            ServeFrontend(default_catalog="oracle")
        frontend = ServeFrontend(default_catalog="tpch")
        response = frontend.handle({"op": "workload", "catalog": "oracle"})
        assert response["ok"] is False

    def test_bad_recommend_parameter_listed(self, frontend):
        response = frontend.handle({"op": "recommend", "params": {"budget": 5}})
        assert response["ok"] is False
        assert "unknown recommend parameters: budget" in response["error"]["message"]

    def test_ill_typed_params_become_error_responses(self, frontend):
        """Type errors from deep inside the library must not kill the loop."""
        response = frontend.handle(
            {"id": 1, "op": "recommend", "params": {"max_candidates": "abc"}}
        )
        assert response["ok"] is False
        assert response["id"] == 1
        # The frontend still answers afterwards.
        assert frontend.handle({"id": 2, "op": "ping"})["ok"] is True

    def test_add_queries_compress_folds_duplicates(self, frontend):
        """``"compress": true`` folds the batch by template before adding.

        Three literal variants of one shape enter the session as a single
        fingerprint-named representative whose weight sums the entries'
        (one carries an explicit weight of 2.0), and the response surfaces
        the compression stats clients just paid for.
        """
        variants = [
            {"sql": "SELECT orders.o_totalprice FROM orders "
                    f"WHERE orders.o_totalprice < {bound}",
             "name": f"v{bound}"}
            for bound in (100, 200, 300)
        ]
        variants[0]["weight"] = 2.0
        response = frontend.handle(
            {"op": "add_queries", "params": {"queries": variants, "compress": True}}
        )
        assert response["ok"] is True
        result = response["result"]
        assert len(result["added"]) == 1
        assert result["added"][0].startswith("tpl_")
        assert result["workload_size"] == 3  # 2 builtin + 1 representative
        assert result["compression"] == {
            "statements": 3, "templates": 1, "ratio": 3.0,
            "total_weight": 4.0, "lossless": False,
        }

    def test_recommend_compress_reports_compression(self, frontend):
        """A compressed recommend returns its fold stats in the response."""
        response = frontend.handle(
            {"id": 9, "op": "recommend", "params": {"compress": True}}
        )
        assert response["ok"] is True
        assert response["result"]["compression"] == {
            "statements": 2, "templates": 2, "ratio": 1.0,
            "total_weight": 2.0, "lossless": True,
        }
        # An uncompressed recommend keeps reporting null, not stale stats.
        plain = frontend.handle({"id": 10, "op": "recommend"})
        assert plain["result"]["compression"] is None

    def test_ill_typed_compress_is_an_error_response(self, frontend):
        for op, params in (
            ("add_queries", {"queries": [{"sql": "SELECT orders.o_totalprice "
                                                 "FROM orders"}],
                             "compress": "yes"}),
            ("recommend", {"compress": 1}),
        ):
            response = frontend.handle({"id": 1, "op": op, "params": params})
            assert response["ok"] is False
            assert "'compress' must be a boolean" in response["error"]["message"]
        assert frontend.handle({"id": 2, "op": "ping"})["ok"] is True

    def test_auto_names_skip_gaps_left_by_removals(self, frontend):
        sql = "SELECT orders.o_totalprice FROM orders ORDER BY orders.o_totalprice"
        first = frontend.handle({"op": "add_queries", "params": {"queries": [
            {"sql": sql}, {"sql": sql},
        ]}})
        assert first["result"]["added"] == ["q3", "q4"]
        frontend.handle({"op": "remove_queries", "params": {"names": ["q3"]}})
        second = frontend.handle({"op": "add_queries", "params": {"queries": [{"sql": sql}]}})
        assert second["ok"] is True
        assert second["result"]["added"] == ["q5"]


class TestServeLoop:
    def test_three_requests_three_responses(self, frontend):
        stdin = io.StringIO(
            '{"id": 1, "op": "ping"}\n'
            "\n"
            '{"id": 2, "op": "workload"}\n'
            '{"id": 3, "op": "explain", "params": {"query": "tpch_small_join"}}\n'
        )
        stdout = io.StringIO()
        assert frontend.serve(stdin, stdout) == 0
        lines = [line for line in stdout.getvalue().splitlines() if line]
        assert len(lines) == 3
        responses = [json.loads(line) for line in lines]
        assert [response["id"] for response in responses] == [1, 2, 3]
        assert all(response["ok"] for response in responses)

    def test_shutdown_stops_the_loop(self, frontend):
        stdin = io.StringIO(
            '{"id": 1, "op": "shutdown"}\n'
            '{"id": 2, "op": "ping"}\n'
        )
        stdout = io.StringIO()
        frontend.serve(stdin, stdout)
        lines = [line for line in stdout.getvalue().splitlines() if line]
        assert len(lines) == 1
        assert json.loads(lines[0])["result"]["shutting_down"] is True
