"""Tests for the OptimizerHooks instrumentation object."""

from repro.optimizer.hooks import OptimizerHooks


class TestDefaults:
    def test_disabled_factory(self):
        hooks = OptimizerHooks.disabled()
        assert not hooks.keep_all_access_paths
        assert not hooks.keep_all_ioc_plans

    def test_pinum_defaults_factory(self):
        hooks = OptimizerHooks.pinum_defaults()
        assert hooks.keep_all_access_paths
        assert hooks.keep_all_ioc_plans
        assert hooks.subsumption_pruning

    def test_buffers_start_empty(self):
        hooks = OptimizerHooks()
        assert hooks.collected_access_paths == []
        assert hooks.collected_plans == {}


class TestReset:
    def test_reset_clears_buffers(self):
        hooks = OptimizerHooks.pinum_defaults()
        hooks.collected_access_paths.append(object())
        hooks.collected_plans["x"] = object()
        hooks.reset()
        assert hooks.collected_access_paths == []
        assert hooks.collected_plans == {}

    def test_reset_preserves_switches(self):
        hooks = OptimizerHooks(keep_all_access_paths=True, keep_all_ioc_plans=True,
                               subsumption_pruning=False)
        hooks.reset()
        assert hooks.keep_all_access_paths
        assert hooks.keep_all_ioc_plans
        assert not hooks.subsumption_pruning

    def test_independent_instances_do_not_share_buffers(self):
        a = OptimizerHooks()
        b = OptimizerHooks()
        a.collected_access_paths.append(object())
        assert b.collected_access_paths == []
