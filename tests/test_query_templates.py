"""Property-based tests for the templatizer (repro.query.templates).

Three families:

* **round trip** -- for randomized valid SELECT and DML ASTs,
  ``templatize(t.instantiate(p)) == (t, p)`` holds exactly, and
  instantiating with the original parameters reproduces the original
  statement;
* **fingerprint laws** -- two instances of the same SQL shape always
  collide on :func:`template_fingerprint` (names and literals are
  invisible), structurally distinct statements never do, and the template
  fingerprint domain is disjoint from the raw query-fingerprint domain;
* **robustness** -- arbitrary text (including mutilated valid SQL) fed to
  :func:`templatize_sql`, and non-statement objects fed to
  :func:`templatize`, only ever raise the repo's typed ``QueryError``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from test_property_parser import dml_statements, select_queries
from repro.query.templates import (
    NUMERIC,
    TEMPLATE_NAME_PREFIX,
    parameterized_sql,
    templatize,
    templatize_sql,
)
from repro.util.errors import QueryError
from repro.util.fingerprint import query_fingerprint, template_fingerprint

_settings = settings(max_examples=80, suppress_health_check=[HealthCheck.too_slow], deadline=None)

_statements = st.one_of(select_queries(), dml_statements())


class TestRoundTripProperties:
    @_settings
    @given(statement=_statements)
    def test_templatize_inverts_instantiate(self, statement):
        template, params = templatize(statement)
        rebuilt = template.instantiate(params, name=statement.name)
        assert rebuilt == statement
        again, params_again = templatize(rebuilt)
        assert again == template
        assert params_again == params

    @_settings
    @given(statement=_statements)
    def test_instantiate_defaults_to_the_template_name(self, statement):
        template, params = templatize(statement)
        assert template.name == f"{TEMPLATE_NAME_PREFIX}{template.fingerprint}"
        assert template.instantiate(params).name == template.name

    @_settings
    @given(statement=_statements)
    def test_markers_appear_in_order_and_match_the_parameter_vector(self, statement):
        template, params = templatize(statement)
        assert template.parameter_count == len(params)
        assert all(isinstance(value, float) for value in params)
        positions = [
            template.sql.index(f"?{n}:{NUMERIC}")
            for n in range(1, len(params) + 1)
        ]
        assert positions == sorted(positions)
        assert template.is_dml == statement.is_dml

    @_settings
    @given(statement=_statements)
    def test_shifted_parameters_stay_in_the_same_template(self, statement):
        template, params = templatize(statement)
        shifted = template.instantiate([value + 1.0 for value in params])
        again, shifted_params = templatize(shifted)
        assert again == template
        assert shifted_params == tuple(value + 1.0 for value in params)


class TestFingerprintLaws:
    @_settings
    @given(statement=_statements)
    def test_literal_variants_always_collide(self, statement):
        template, params = templatize(statement)
        variant = template.instantiate(
            [value + 1.0 for value in params], name="variant"
        )
        assert template_fingerprint(variant) == template_fingerprint(statement)
        assert template_fingerprint(variant) == template.fingerprint

    @_settings
    @given(statement=_statements)
    def test_names_never_influence_the_template(self, statement):
        renamed = statement.renamed("a_completely_different_name")
        assert template_fingerprint(renamed) == template_fingerprint(statement)
        assert templatize(renamed)[0] == templatize(statement)[0]

    @_settings
    @given(first=_statements, second=_statements)
    def test_fingerprints_collide_iff_the_parameterized_sql_matches(self, first, second):
        same_shape = parameterized_sql(first) == parameterized_sql(second)
        same_fingerprint = template_fingerprint(first) == template_fingerprint(second)
        assert same_shape == same_fingerprint

    @_settings
    @given(statement=_statements)
    def test_template_domain_is_disjoint_from_query_fingerprints(self, statement):
        assert template_fingerprint(statement) != query_fingerprint(statement)


class TestRobustness:
    @_settings
    @given(text=st.text(max_size=200))
    def test_arbitrary_text_never_raises_internal_errors(self, text):
        try:
            templatize_sql(text)
        except QueryError:
            pass  # the one sanctioned failure mode

    @_settings
    @given(
        source=_statements,
        start=st.integers(min_value=0, max_value=199),
        length=st.integers(min_value=1, max_value=40),
    )
    def test_mutilated_valid_sql_never_raises_internal_errors(self, source, start, length):
        sql = source.to_sql()
        try:
            templatize_sql(sql[:start] + sql[start + length:])
        except QueryError:
            pass

    @pytest.mark.parametrize("bogus", [None, 42, 3.5, object(), ["SELECT"], {"sql": "x"}])
    def test_non_statements_raise_the_typed_error(self, bogus):
        with pytest.raises(QueryError, match="parsed Query or DmlStatement"):
            templatize(bogus)

    def test_templatize_sql_rejects_non_text(self):
        with pytest.raises(QueryError, match="expects SQL text"):
            templatize_sql(b"SELECT alpha.c1 FROM alpha")


class TestParameterValidation:
    SQL = (
        "SELECT alpha.c1 FROM alpha "
        "WHERE alpha.c1 = 3 AND alpha.c2 BETWEEN 1 AND 9"
    )

    def test_the_docstring_example_renders_exactly(self):
        template, params = templatize_sql(self.SQL)
        assert params == (3.0, 1.0, 9.0)
        assert template.sql == (
            "SELECT alpha.c1\n"
            "FROM alpha\n"
            "WHERE alpha.c1 = ?1:num AND alpha.c2 BETWEEN ?2:num AND ?3:num"
        )
        assert [slot.kind for slot in template.slots] == [
            "filter_value", "filter_value", "filter_high"
        ]
        assert all(slot.type_tag == NUMERIC for slot in template.slots)

    @pytest.mark.parametrize(
        "params, message",
        [
            ((1.0, 2.0), "takes 3 parameters"),
            ((1.0, 2.0, 3.0, 4.0), "takes 3 parameters"),
            ((1.0, float("nan"), 3.0), "must be finite"),
            ((1.0, float("inf"), 3.0), "must be finite"),
            ((1.0, True, 3.0), "must be numeric"),
            ((1.0, "2", 3.0), "must be numeric"),
            ((1.0, None, 3.0), "must be numeric"),
        ],
    )
    def test_bad_parameter_vectors_raise_the_typed_error(self, params, message):
        template, _ = templatize_sql(self.SQL)
        with pytest.raises(QueryError, match=message):
            template.instantiate(params)
