"""Tests for the top-level optimizer: call accounting, options and hooks."""

import pytest

from repro.catalog.index import Index
from repro.optimizer import Optimizer, OptimizerHooks, OptimizerOptions
from repro.optimizer.cost_model import CostParameters
from repro.query import QueryBuilder
from repro.util.errors import QueryError


class TestOptimize:
    def test_returns_plan_and_cost(self, optimizer, join_query):
        result = optimizer.optimize(join_query)
        assert result.cost == result.plan.total_cost
        assert result.plan.tables == frozenset(join_query.tables)

    def test_invalid_query_raises(self, optimizer):
        bad = QueryBuilder("bad").select("ghost.x").from_tables("ghost").build()
        with pytest.raises(QueryError):
            optimizer.optimize(bad)

    def test_indexes_reduce_or_preserve_cost(self, small_catalog, join_query):
        optimizer = Optimizer(small_catalog)
        before = optimizer.optimize(join_query).cost
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("products", ["p_category", "p_id", "p_price"]))
        after = optimizer.optimize(join_query).cost
        assert after <= before

    def test_cost_helper_matches_optimize(self, optimizer, join_query):
        assert optimizer.cost(join_query) == pytest.approx(optimizer.optimize(join_query).cost)


class TestCallAccounting:
    def test_every_call_counted(self, optimizer, join_query, simple_query):
        optimizer.optimize(join_query)
        optimizer.optimize(simple_query)
        optimizer.optimize(join_query)
        assert optimizer.call_count == 3
        assert len(optimizer.call_log) == 3
        assert optimizer.total_optimization_seconds > 0

    def test_reset_counters(self, optimizer, join_query):
        optimizer.optimize(join_query)
        optimizer.reset_counters()
        assert optimizer.call_count == 0
        assert optimizer.call_log == []

    def test_call_log_records_nestloop_flag(self, optimizer, join_query):
        optimizer.optimize(join_query, enable_nestloop=False)
        assert optimizer.call_log[-1].enable_nestloop is False


class TestOptions:
    def test_enable_nestloop_option(self, small_catalog, join_query):
        small_catalog.add_index(Index("customers", ["c_id"]))
        no_nlj = Optimizer(small_catalog, OptimizerOptions(enable_nestloop=False))
        result = no_nlj.optimize(join_query)
        assert not result.plan.uses_nested_loop()

    def test_per_call_override_beats_option(self, small_catalog, join_query):
        small_catalog.add_index(Index("customers", ["c_id"]))
        optimizer = Optimizer(small_catalog, OptimizerOptions(enable_nestloop=True))
        result = optimizer.optimize(join_query, enable_nestloop=False)
        assert not result.plan.uses_nested_loop()

    def test_custom_cost_parameters_change_costs(self, small_catalog, join_query):
        default = Optimizer(small_catalog).optimize(join_query).cost
        pricey_io = Optimizer(
            small_catalog,
            OptimizerOptions(cost_parameters=CostParameters(seq_page_cost=10.0)),
        ).optimize(join_query).cost
        assert pricey_io > default


class TestHooks:
    def test_hook_outputs_exposed_in_result(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        optimizer = Optimizer(small_catalog)
        hooks = OptimizerHooks.pinum_defaults()
        result = optimizer.optimize(join_query, hooks=hooks)
        assert result.ioc_plans
        assert result.access_paths
        # The final plans include grouping, so they cost at least as much as
        # the bare join plans and cover all tables.
        for plan in result.ioc_plans.values():
            assert plan.tables == frozenset(join_query.tables)

    def test_hooks_reset_between_calls(self, small_catalog, join_query, simple_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        optimizer = Optimizer(small_catalog)
        hooks = OptimizerHooks.pinum_defaults()
        optimizer.optimize(join_query, hooks=hooks)
        first_paths = len(hooks.collected_access_paths)
        optimizer.optimize(simple_query, hooks=hooks)
        assert len(hooks.collected_access_paths) < first_paths + 10
        # After the second call the buffers describe only the second query.
        assert all(p.table == "sales" for p in hooks.collected_access_paths)

    def test_disabled_hooks_export_nothing(self, optimizer, join_query):
        result = optimizer.optimize(join_query, hooks=OptimizerHooks.disabled())
        assert result.ioc_plans == {}
        assert result.access_paths == []

    def test_best_plan_cost_same_with_and_without_hooks(self, small_catalog, join_query):
        small_catalog.add_index(Index("sales", ["s_customer"]))
        small_catalog.add_index(Index("customers", ["c_id"]))
        optimizer = Optimizer(small_catalog)
        plain = optimizer.optimize(join_query).cost
        hooked = optimizer.optimize(join_query, hooks=OptimizerHooks.pinum_defaults()).cost
        assert hooked == pytest.approx(plain, rel=1e-9)
