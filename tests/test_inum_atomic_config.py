"""Tests for atomic configurations."""

import pytest

from repro.catalog.index import Index
from repro.inum.atomic_config import AtomicConfiguration, enumerate_atomic_configurations
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.util.errors import PlanningError


class TestConstruction:
    def test_one_index_per_table_enforced(self):
        with pytest.raises(PlanningError):
            AtomicConfiguration([Index("t", ["a"]), Index("t", ["b"])])

    def test_same_index_twice_is_fine(self):
        index = Index("t", ["a"])
        config = AtomicConfiguration([index, Index("t", ["a"])])
        assert len(config) == 1

    def test_empty_configuration(self):
        config = AtomicConfiguration([])
        assert len(config) == 0
        assert config.index_for("t") is None

    def test_equality_and_hash(self):
        a = AtomicConfiguration([Index("t", ["a"]), Index("u", ["b"])])
        b = AtomicConfiguration([Index("u", ["b"]), Index("t", ["a"])])
        assert a == b
        assert len({a, b}) == 1

    def test_index_for(self):
        index = Index("t", ["a"])
        config = AtomicConfiguration([index])
        assert config.index_for("t") == index
        assert config.index_for("other") is None

    def test_restricted_to(self):
        config = AtomicConfiguration([Index("t", ["a"]), Index("u", ["b"])])
        restricted = config.restricted_to(["t"])
        assert restricted.tables == ("t",)


class TestCoverage:
    def test_covers_empty_combination(self):
        ioc = InterestingOrderCombination({"t": None, "u": None})
        assert AtomicConfiguration([]).covers(ioc)

    def test_covers_when_leading_column_matches(self):
        ioc = InterestingOrderCombination({"t": "a", "u": None})
        assert AtomicConfiguration([Index("t", ["a", "x"])]).covers(ioc)

    def test_not_covered_when_order_column_not_leading(self):
        ioc = InterestingOrderCombination({"t": "a"})
        assert not AtomicConfiguration([Index("t", ["x", "a"])]).covers(ioc)

    def test_not_covered_when_table_has_no_index(self):
        ioc = InterestingOrderCombination({"t": "a", "u": "b"})
        assert not AtomicConfiguration([Index("t", ["a"])]).covers(ioc)

    def test_size_in_bytes(self, small_catalog):
        config = AtomicConfiguration([Index("sales", ["s_customer"])])
        assert config.size_in_bytes(small_catalog) > 0
        assert AtomicConfiguration([]).size_in_bytes(small_catalog) == 0


class TestEnumeration:
    def test_counts(self, join_query):
        candidates = [
            Index("sales", ["s_customer"]),
            Index("sales", ["s_product"]),
            Index("customers", ["c_id"]),
        ]
        configs = enumerate_atomic_configurations(join_query, candidates)
        # (2 sales choices + none) * (1 customers + none) * (none for products)
        assert len(configs) == 3 * 2 * 1
        assert all(isinstance(c, AtomicConfiguration) for c in configs)

    def test_limit_truncates(self, join_query):
        candidates = [Index("sales", ["s_customer"]), Index("customers", ["c_id"])]
        configs = enumerate_atomic_configurations(join_query, candidates, limit=2)
        assert len(configs) == 2

    def test_without_empty_choice(self, join_query):
        candidates = [Index("sales", ["s_customer"]), Index("customers", ["c_id"])]
        configs = enumerate_atomic_configurations(
            join_query, candidates, include_empty_choice=False
        )
        # Tables with no candidates still fall back to the empty choice.
        assert len(configs) == 1
        assert len(configs[0]) == 2
