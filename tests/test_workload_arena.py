"""The fused workload arena: one tensor family answers the whole workload.

Property tests pin the arena's evaluation -- single index sets, whole
batches and CELF frontiers, read-only and weighted-DML -- to the scalar
INUM arithmetic and the per-query engines within 1e-9 on randomized plan
caches (the same cache strategy :mod:`test_property_based` drives the
per-query backends with).  The shared-memory suite covers the
publish/attach/release lifecycle in-process and across a spawned child,
and the tier suite covers the one-copy adoption path sessions use.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.advisor import CandidateGenerator
from repro.advisor.benefit import CacheBackedWorkloadCostModel
from repro.catalog.index import Index
from repro.inum.access_costs import AccessCostInfo
from repro.inum.arena import (
    arena_fingerprint,
    attach_arena,
    compile_arena,
    release_arena,
    share_arena,
    shared_arena_names,
)
from repro.inum.cache import CachedSlot, CacheEntry, InumCache
from repro.inum.compiled import numpy_available
from repro.inum.cost_estimation import InumCostModel
from repro.api.tier import TierNamespace
from repro.optimizer import Optimizer
from repro.optimizer.interesting_orders import InterestingOrderCombination
from repro.optimizer.maintenance import MaintenanceProfile
from repro.util.errors import PlanningError

from test_property_based import _StubQuery, cache_with_indexes

_settings = settings(
    max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

#: Both fused backends when numpy is installed, the pure-Python one otherwise.
_BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


# ---------------------------------------------------------------------------
# Randomized workloads: 1-3 plan caches fused into one arena
# ---------------------------------------------------------------------------


@st.composite
def workload_with_indexes(draw):
    """Randomized caches fused into one workload, plus a probe index set.

    Each statement optionally carries a :class:`MaintenanceProfile` (the
    weighted-DML case), and the workload optionally carries a per-statement
    weight vector, so the strategy exercises every evaluate() signature.
    """
    count = draw(st.integers(min_value=1, max_value=3))
    queries, caches = [], {}
    pool = {}
    for position in range(count):
        cache, subset = draw(cache_with_indexes())
        cache.query.name = f"q{position}"
        if draw(st.booleans()):  # a weighted-DML statement
            cache.maintenance = MaintenanceProfile(
                statement=cache.query.name,
                base_cost=draw(st.floats(min_value=0.0, max_value=1e4)),
                per_index={
                    index.key: draw(st.floats(min_value=0.1, max_value=1e4))
                    for index in subset
                    if draw(st.booleans())
                },
            )
        queries.append(cache.query)
        caches[cache.query.name] = cache
        for index in subset:
            pool[index.key] = index
    subset = list(pool.values())
    weights = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.floats(min_value=0.0, max_value=50.0),
                min_size=count,
                max_size=count,
            ),
        )
    )
    return queries, caches, subset, weights


def _reference_vector(queries, caches, subset):
    """Scalar per-query costs; PlanningError bubbles.

    :class:`InumCostModel` already folds each cache's maintenance profile
    into the estimate, so this is read + maintenance -- the same quantity
    :meth:`WorkloadArena.per_query_vector` reports.
    """
    vector = []
    for query in queries:
        cost, _ = InumCostModel(caches[query.name]).estimate_with_indexes_detail(
            subset
        )
        vector.append(cost)
    return vector


class TestArenaMatchesScalarArithmetic:
    @_settings
    @given(data=workload_with_indexes())
    def test_evaluate_matches_the_scalar_models(self, data):
        """evaluate/evaluate_detail/query_cost reproduce the scalar sums."""
        queries, caches, subset, weights = data
        try:
            vector = _reference_vector(queries, caches, subset)
        except PlanningError:
            vector = None
        for backend in _BACKENDS:
            arena = compile_arena(queries, caches, backend=backend)
            if vector is None:
                with pytest.raises(PlanningError):
                    arena.evaluate(subset, weights)
                continue
            expected = (
                sum(vector)
                if weights is None
                else sum(w * c for w, c in zip(weights, vector))
            )
            assert arena.evaluate(subset, weights) == pytest.approx(
                expected, rel=1e-9, abs=1e-9
            )
            detail = arena.evaluate_detail(subset)
            assert list(detail) == [query.name for query in queries]
            for name, want in zip(detail, vector):
                assert detail[name] == pytest.approx(want, rel=1e-9, abs=1e-9)
                assert arena.query_cost(name, subset) == pytest.approx(
                    want, rel=1e-9, abs=1e-9
                )

    @_settings
    @given(data=workload_with_indexes())
    def test_batch_matches_per_set_evaluation(self, data):
        """evaluate_batch's masked-min batch equals one evaluate() per set."""
        queries, caches, subset, weights = data
        sets = [subset, subset[: len(subset) // 2], [], list(reversed(subset))]
        for backend in _BACKENDS:
            arena = compile_arena(queries, caches, backend=backend)
            try:
                expected = [arena.evaluate(one, weights) for one in sets]
            except PlanningError:
                with pytest.raises(PlanningError):
                    arena.evaluate_batch(sets, weights)
                continue
            got = arena.evaluate_batch(sets, weights)
            assert len(got) == len(expected)
            for have, want in zip(got, expected):
                assert have == pytest.approx(want, rel=1e-9, abs=1e-9)
            assert arena.evaluate_batch([], weights) == []

    @_settings
    @given(data=workload_with_indexes())
    def test_frontier_matches_full_evaluation(self, data):
        """The rank-1 frontier equals evaluating winners + [candidate]."""
        queries, caches, subset, weights = data
        winners = subset[: len(subset) // 2]
        candidates = list(subset[len(subset) // 2 :]) + [None]
        sets = [
            list(winners) + ([candidate] if candidate is not None else [])
            for candidate in candidates
        ]
        for backend in _BACKENDS:
            arena = compile_arena(queries, caches, backend=backend)
            try:
                expected_rows = [arena.per_query_vector(one) for one in sets]
                expected = [arena.evaluate(one, weights) for one in sets]
            except PlanningError:
                with pytest.raises(PlanningError):
                    arena.frontier_detail(winners, candidates, weights)
                continue
            totals, rows = arena.frontier_detail(winners, candidates, weights)
            assert arena.evaluate_frontier(winners, candidates, weights) == totals
            assert len(totals) == len(rows) == len(candidates)
            for have, want in zip(totals, expected):
                assert have == pytest.approx(want, rel=1e-9, abs=1e-9)
            for have_row, want_row in zip(rows, expected_rows):
                for have, want in zip(have_row, want_row):
                    assert have == pytest.approx(want, rel=1e-9, abs=1e-9)

    @needs_numpy
    @_settings
    @given(data=workload_with_indexes())
    def test_backends_agree_with_each_other(self, data):
        """The numpy and pure-Python arenas are interchangeable."""
        queries, caches, subset, weights = data
        python_arena = compile_arena(queries, caches, backend="python")
        numpy_arena = compile_arena(queries, caches, backend="numpy")
        try:
            expected = python_arena.evaluate(subset, weights)
        except PlanningError:
            with pytest.raises(PlanningError):
                numpy_arena.evaluate(subset, weights)
            return
        assert numpy_arena.evaluate(subset, weights) == pytest.approx(
            expected, rel=1e-9, abs=1e-9
        )
        assert numpy_arena.query_names == python_arena.query_names
        assert numpy_arena.column_count == python_arena.column_count
        assert numpy_arena.entry_count == python_arena.entry_count


# ---------------------------------------------------------------------------
# Layout validation, identity and memoization
# ---------------------------------------------------------------------------


def _tiny_workload(count=2):
    """A deterministic workload: one seqscan + one index path per table."""
    queries, caches = [], {}
    tables = ["alpha", "beta", "gamma"]
    for position in range(count):
        query = _StubQuery(tables[: position + 1])
        query.name = f"q{position}"
        cache = InumCache(query)
        for table in query.tables:
            cache.access_costs.add(
                AccessCostInfo(
                    table=table,
                    index_key=None,
                    full_cost=90.0 + position,
                    probe_cost=None,
                    provided_order=None,
                )
            )
            index = Index(table, ["a1"])
            cache.access_costs.add(
                AccessCostInfo(
                    table=table,
                    index_key=index.key,
                    full_cost=40.0 + position,
                    probe_cost=4.0,
                    provided_order="a1",
                )
            )
        cache.add_entry(
            CacheEntry(
                ioc=InterestingOrderCombination({t: None for t in query.tables}),
                internal_cost=10.0 * (position + 1),
                slots=tuple(
                    CachedSlot(
                        table=table,
                        required_order=None,
                        multiplier=1.0,
                        parameterized=False,
                    )
                    for table in query.tables
                ),
                uses_nestloop=False,
            )
        )
        queries.append(query)
        caches[query.name] = cache
    return queries, caches


class TestArenaLayout:
    def test_unknown_backend_is_an_error(self):
        queries, caches = _tiny_workload()
        with pytest.raises(PlanningError):
            compile_arena(queries, caches, backend="fortran")

    def test_missing_cache_is_an_error(self):
        queries, _ = _tiny_workload()
        with pytest.raises(PlanningError):
            compile_arena(queries, {}, backend="python")

    def test_empty_plan_cache_is_an_error(self):
        query = _StubQuery(["alpha"])
        query.name = "empty"
        with pytest.raises(PlanningError):
            compile_arena([query], {"empty": InumCache(query)}, backend="python")

    def test_shared_access_methods_use_one_global_column(self):
        """Both queries' (alpha, a1) paths collapse onto one arena column."""
        queries, caches = _tiny_workload(count=2)
        arena = compile_arena(queries, caches, backend="python")
        index = Index("alpha", ["a1"])
        assert arena.query_count == 2
        # alpha heap + alpha a1 + beta heap + beta a1: shared, not per-query.
        assert arena.column_count == 4
        assert arena.column_for(index) is not None
        assert arena.column_for(Index("alpha", ["uncollected"])) is None

    def test_mask_memo_counts_hits(self):
        queries, caches = _tiny_workload()
        arena = compile_arena(queries, caches, backend="python")
        index = Index("alpha", ["a1"])
        hits_before, misses_before = arena.memo_counters()
        arena.evaluate([index])
        arena.evaluate([index])
        hits, misses = arena.memo_counters()
        assert misses == misses_before + 1
        assert hits == hits_before + 1

    def test_fingerprint_identity(self):
        cache_ids = {"q0": "cache-a", "q1": "cache-b"}
        fingerprint = arena_fingerprint(["q0", "q1"], cache_ids, "numpy")
        assert fingerprint == arena_fingerprint(["q0", "q1"], cache_ids, "numpy")
        assert fingerprint.startswith("arena:")
        # Vector order, backend and cache identity (which folds in the
        # maintenance digest) all change the arena.
        assert arena_fingerprint(["q1", "q0"], cache_ids, "numpy") != fingerprint
        assert arena_fingerprint(["q0", "q1"], cache_ids, "python") != fingerprint
        assert (
            arena_fingerprint(
                ["q0", "q1"], {"q0": "cache-a|maint:x", "q1": "cache-b"}, "numpy"
            )
            != fingerprint
        )


# ---------------------------------------------------------------------------
# Shared-memory lifecycle
# ---------------------------------------------------------------------------


def _attach_and_evaluate(name, queue):
    """Spawn target: adopt the shared arena and report what it evaluates."""
    try:
        from repro.inum.arena import attach_arena as _attach
        from repro.inum.arena import release_arena as _release

        arena = _attach(name)
        try:
            queue.put(("ok", arena.evaluate([]), list(arena.query_names)))
        finally:
            del arena
            _release(name)
    except BaseException as error:  # pragma: no cover - diagnostic path
        queue.put(("error", repr(error), []))


@needs_numpy
class TestSharedMemoryLifecycle:
    def test_same_process_roundtrip(self):
        queries, caches = _tiny_workload()
        arena = compile_arena(queries, caches, backend="numpy")
        index = Index("alpha", ["a1"])
        expected_bare = arena.evaluate([])
        expected_indexed = arena.evaluate([index])

        name = share_arena(arena)
        assert arena.shared_name == name
        assert name in shared_arena_names()

        attached = attach_arena(name)
        assert attached.query_names == arena.query_names
        # Same float64 buffers: the attached view is exact, not approximate.
        assert attached.evaluate([]) == expected_bare
        assert attached.evaluate([index]) == expected_indexed

        del attached
        release_arena(name)
        assert name in shared_arena_names(), "the owner still holds a reference"
        del arena
        release_arena(name)
        assert name not in shared_arena_names()

    def test_share_is_refcounted_per_call(self):
        queries, caches = _tiny_workload()
        arena = compile_arena(queries, caches, backend="numpy")
        name = share_arena(arena)
        assert share_arena(arena) == name, "re-sharing must reuse the segment"
        release_arena(name)
        assert name in shared_arena_names()
        del arena
        release_arena(name)
        assert name not in shared_arena_names()

    def test_release_of_an_unknown_name_is_a_noop(self):
        release_arena("never-shared-arena-segment")

    def test_python_backend_cannot_be_shared(self):
        queries, caches = _tiny_workload()
        arena = compile_arena(queries, caches, backend="python")
        with pytest.raises(PlanningError):
            share_arena(arena)

    def test_cross_process_attach(self):
        """A spawned child maps the segment zero-copy and agrees exactly."""
        queries, caches = _tiny_workload()
        arena = compile_arena(queries, caches, backend="numpy")
        expected = arena.evaluate([])
        expected_names = list(arena.query_names)
        name = share_arena(arena)
        try:
            context = multiprocessing.get_context("spawn")
            queue = context.Queue()
            child = context.Process(target=_attach_and_evaluate, args=(name, queue))
            child.start()
            status, value, names = queue.get(timeout=120)
            child.join(timeout=120)
            assert status == "ok", value
            assert value == expected
            assert names == expected_names
            assert child.exitcode == 0
            # The child's release must not have unlinked the owner's segment.
            assert arena.evaluate([]) == expected
        finally:
            del arena
            release_arena(name)
        assert name not in shared_arena_names()


# ---------------------------------------------------------------------------
# Tier integration: one arena copy for every session
# ---------------------------------------------------------------------------


class TestTierArenaSharing:
    def test_namespace_promotes_once_and_counts_hits(self):
        namespace = TierNamespace("fingerprint")
        first, second = object(), object()
        namespace.promote_arena("arena:abc", first)
        namespace.promote_arena("arena:abc", second)
        assert namespace.lookup_arena("arena:abc") is first, "first promotion wins"
        assert namespace.lookup_arena("arena:missing") is None
        assert namespace.arena_count == 1
        assert namespace.statistics.arena_promotions == 1
        assert namespace.statistics.arena_hits == 1

    def test_arena_map_shares_through_the_namespace(self):
        namespace = TierNamespace("fingerprint")
        mine = namespace.arena_map()
        theirs = namespace.arena_map()
        marker = object()
        mine["arena:x"] = marker
        assert theirs.get("arena:x") is marker, "adopted through the namespace"
        # A session pruning its own pool never evicts the shared copy.
        del mine["arena:x"]
        assert "arena:x" not in mine
        assert theirs["arena:x"] is marker
        assert namespace.arena_count == 1


# ---------------------------------------------------------------------------
# Cost-model integration: engine="arena" is a drop-in engine
# ---------------------------------------------------------------------------


class TestArenaEngineIntegration:
    def test_cost_model_arena_engine_matches_per_query_engines(
        self, small_catalog, join_query, simple_query
    ):
        queries = [join_query, simple_query]
        candidates = CandidateGenerator(small_catalog).for_workload(queries)
        model = CacheBackedWorkloadCostModel(
            Optimizer(small_catalog), queries, candidates, mode="pinum", engine="python"
        )
        probes = [candidates[:0], candidates[:1], candidates[:3], candidates]
        expected = [
            (model.per_query_costs(probe), model.workload_cost(probe))
            for probe in probes
        ]

        model.select_engine("arena")
        for probe, (per_query, total) in zip(probes, expected):
            arena_per_query = model.per_query_costs(probe)
            assert set(arena_per_query) == set(per_query)
            for name, want in per_query.items():
                assert arena_per_query[name] == pytest.approx(
                    want, rel=1e-9, abs=1e-9
                )
            assert model.workload_cost(probe) == pytest.approx(
                total, rel=1e-9, abs=1e-9
            )
