"""Update-aware tuning through the advisor and session layers.

Covers the net-benefit semantics end to end: DML caches carrying
maintenance columns, weighted workload totals, write-dominated candidate
pruning, the session's weight mutations, and the guarantee that pure-SELECT
workloads are untouched by any of it.
"""

from __future__ import annotations

import pytest

from repro.advisor.advisor import AdvisorOptions
from repro.advisor.benefit import (
    CacheBackedWorkloadCostModel,
    IncrementalWorkloadEvaluator,
    OptimizerWorkloadCostModel,
)
from repro.advisor.candidates import CandidateGenerator, prune_write_dominated
from repro.api.requests import (
    EvaluateRequest,
    ExplainRequest,
    RecommendRequest,
    WhatIfRequest,
)
from repro.api.session import TuningSession
from repro.catalog.index import Index
from repro.optimizer.maintenance import MaintenanceProfile
from repro.optimizer.optimizer import Optimizer
from repro.query import parse_statement
from repro.util.errors import AdvisorError
from repro.util.units import gigabytes

from conftest import build_join_query, build_simple_query, build_small_catalog


UPDATE_SQL = "UPDATE sales SET s_amount = 7 WHERE s_quantity <= 500"
DELETE_SQL = "DELETE FROM sales WHERE s_quantity BETWEEN 100 AND 600"
INSERT_SQL = "INSERT INTO sales (s_amount, s_quantity) VALUES (1, 2), (3, 4)"


def _mixed_workload():
    return [
        build_join_query("q_join"),
        build_simple_query("q_scan"),
        parse_statement(UPDATE_SQL, name="w_upd"),
        parse_statement(DELETE_SQL, name="w_del"),
        parse_statement(INSERT_SQL, name="w_ins"),
    ]


@pytest.fixture
def mixed_session():
    catalog = build_small_catalog()
    return TuningSession(
        catalog,
        _mixed_workload(),
        options=AdvisorOptions(space_budget_bytes=gigabytes(1)),
    )


class TestWeightedCostModel:
    def test_weights_scale_workload_cost(self, small_catalog):
        queries = [build_join_query("a"), build_simple_query("b")]
        model = OptimizerWorkloadCostModel(
            Optimizer(small_catalog), queries, weights={"a": 3.0}
        )
        per_query = model.per_query_costs([])
        assert model.workload_cost([]) == pytest.approx(
            3.0 * per_query["a"] + per_query["b"]
        )
        assert model.weighted_total(per_query) == model.workload_cost([])

    def test_default_weights_change_nothing(self, small_catalog):
        queries = [build_join_query("a"), build_simple_query("b")]
        plain = OptimizerWorkloadCostModel(Optimizer(small_catalog), queries)
        weighted = OptimizerWorkloadCostModel(
            Optimizer(small_catalog), queries, weights={"a": 1.0, "b": 1.0}
        )
        assert plain.workload_cost([]) == weighted.workload_cost([])

    def test_negative_weight_rejected(self, small_catalog):
        with pytest.raises(AdvisorError, match=">= 0"):
            OptimizerWorkloadCostModel(
                Optimizer(small_catalog), [build_simple_query("a")], weights={"a": -1}
            )

    def test_incremental_evaluator_matches_full_weighted_cost(self, small_catalog):
        statements = _mixed_workload()
        weights = {"w_upd": 2.0, "w_del": 3.0, "q_join": 0.5}
        generator = CandidateGenerator(small_catalog)
        pool = generator.for_workload(statements)
        model = CacheBackedWorkloadCostModel(
            Optimizer(small_catalog), statements, pool, weights=weights
        )
        evaluator = IncrementalWorkloadEvaluator(model)
        assert evaluator.total == model.workload_cost([])
        winners = []
        for candidate in pool[:4]:
            delta_cost = evaluator.cost_with(winners, candidate)
            assert delta_cost == pytest.approx(
                model.workload_cost(winners + [candidate]), rel=1e-12
            )

    def test_dml_statement_cost_includes_maintenance(self, small_catalog):
        statements = _mixed_workload()
        generator = CandidateGenerator(small_catalog)
        pool = generator.for_workload(statements)
        model = CacheBackedWorkloadCostModel(
            Optimizer(small_catalog), statements, pool
        )
        sales_index = next(index for index in pool if index.table == "sales")
        insert = statements[-1]
        bare = model.query_cost(insert, [])
        with_index = model.query_cost(insert, [sales_index])
        assert with_index > bare  # the INSERT pays for the index, never gains

    def test_optimizer_and_cache_models_agree_on_dml_shape(self, small_catalog):
        """Both oracles charge maintenance: costs rise when indexes exist."""
        statements = [parse_statement(INSERT_SQL, name="w_ins")]
        index = Index("sales", ["s_amount"])
        cache_model = CacheBackedWorkloadCostModel(
            Optimizer(small_catalog), statements, [index]
        )
        optimizer_model = OptimizerWorkloadCostModel(
            Optimizer(small_catalog), statements
        )
        for model in (cache_model, optimizer_model):
            assert model.workload_cost([index]) > model.workload_cost([])


class TestWriteDominatedPruning:
    def test_dominated_candidate_is_dropped(self):
        statements = [
            build_simple_query("q"),
            parse_statement(DELETE_SQL, name="w"),
        ]
        reader_bound = 100.0
        cheap = Index("sales", ["s_amount"])
        doomed = Index("sales", ["s_quantity"])
        profiles = {
            "w": MaintenanceProfile(
                statement="w",
                base_cost=1.0,
                per_index={cheap.key: 10.0, doomed.key: 500.0},
            )
        }
        kept, pruned = prune_write_dominated(
            [cheap, doomed],
            statements,
            weights={},
            baseline_costs={"q": reader_bound, "w": 50.0},
            profiles=profiles,
        )
        assert pruned == 1
        assert [index.key for index in kept] == [cheap.key]

    def test_weights_move_the_domination_threshold(self):
        statements = [
            build_simple_query("q"),
            parse_statement(DELETE_SQL, name="w"),
        ]
        candidate = Index("sales", ["s_amount"])
        profiles = {
            "w": MaintenanceProfile(statement="w", per_index={candidate.key: 60.0})
        }
        baseline = {"q": 100.0, "w": 0.0}
        kept, pruned = prune_write_dominated(
            [candidate], statements, {"w": 1.0}, baseline, profiles
        )
        assert not pruned and kept
        kept, pruned = prune_write_dominated(
            [candidate], statements, {"w": 2.0}, baseline, profiles
        )
        assert pruned == 1 and not kept

    def test_pure_read_workload_prunes_nothing(self):
        statements = [build_simple_query("q")]
        candidates = [Index("sales", ["s_amount"]), Index("sales", ["s_quantity"])]
        kept, pruned = prune_write_dominated(
            candidates, statements, {}, {"q": 0.0}, {}
        )
        assert pruned == 0
        assert kept == candidates


class TestUpdateAwareSession:
    def test_recommend_shrinks_under_write_weight(self, mixed_session):
        baseline = mixed_session.recommend().result
        heavy = mixed_session.recommend(
            RecommendRequest(statement_weights={
                "w_upd": 500.0, "w_del": 500.0, "w_ins": 500.0,
            })
        ).result
        assert len(heavy.selected_indexes) <= len(baseline.selected_indexes)
        assert heavy.workload_cost_before > baseline.workload_cost_before

    def test_request_weights_do_not_stick(self, mixed_session):
        before = mixed_session.recommend().result
        mixed_session.recommend(
            RecommendRequest(statement_weights={"w_del": 1000.0})
        )
        after = mixed_session.recommend().result
        assert [i.key for i in after.selected_indexes] == [
            i.key for i in before.selected_indexes
        ]
        assert after.workload_cost_before == before.workload_cost_before

    def test_request_weights_reject_unknown_names(self, mixed_session):
        with pytest.raises(AdvisorError, match="no statement named"):
            mixed_session.recommend(
                RecommendRequest(statement_weights={"ghost": 5.0})
            )

    def test_remove_queries_drops_the_statement_weight(self, mixed_session):
        mixed_session.set_weights({"w_del": 9.0})
        mixed_session.remove_queries(["w_del"])
        assert "w_del" not in mixed_session.options.weight_map()
        # A different statement re-using the name starts back at weight 1.0.
        mixed_session.add_queries([parse_statement(
            "DELETE FROM sales WHERE s_amount <= 1", name="w_del"
        )])
        assert mixed_session.options.weight_map().get("w_del", 1.0) == 1.0

    def test_set_weights_sticks_and_validates(self, mixed_session):
        with pytest.raises(AdvisorError, match="no statement named"):
            mixed_session.set_weights({"nope": 2.0})
        effective = mixed_session.set_weights({"w_del": 4.0})
        assert effective == {"w_del": 4.0}
        result = mixed_session.recommend().result
        heavier = mixed_session.recommend(
            RecommendRequest(statement_weights={"w_del": 8.0})
        ).result
        assert heavier.workload_cost_before > result.workload_cost_before

    def test_weight_changes_reuse_caches(self, mixed_session):
        first = mixed_session.recommend()
        assert first.caches_built > 0
        mixed_session.set_weights({"w_upd": 9.0})
        second = mixed_session.recommend()
        assert second.caches_built == 0
        assert second.caches_reused == len(mixed_session.queries)

    def test_evaluate_charges_maintenance(self, mixed_session):
        mixed_session.recommend()
        # Pick a *pool* candidate: maintenance columns cover the candidate
        # set the caches were built for (unknown indexes contribute 0, the
        # same treatment the read side gives uncollected access costs).
        generator = CandidateGenerator(mixed_session.catalog)
        index = next(
            index
            for index in generator.for_workload(mixed_session.queries)
            if index.table == "sales"
        )
        priced = mixed_session.evaluate(EvaluateRequest(indexes=[index]))
        bare = mixed_session.evaluate(EvaluateRequest(indexes=[]))
        assert priced.per_query_costs["w_ins"] > bare.per_query_costs["w_ins"]
        unknown = Index("sales", ["s_quantity", "s_product", "s_amount", "s_customer"])
        assert mixed_session.evaluate(
            EvaluateRequest(indexes=[unknown])
        ).per_query_costs["w_ins"] == bare.per_query_costs["w_ins"]

    def test_what_if_prices_dml(self, mixed_session):
        index = Index("sales", ["s_amount", "s_quantity"])
        response = mixed_session.what_if(WhatIfRequest(indexes=[index]))
        bare = mixed_session.what_if(WhatIfRequest(indexes=[]))
        assert response.per_query_costs["w_ins"] > bare.per_query_costs["w_ins"]
        # The UPDATE's read phase can gain more than its maintenance costs.
        assert set(response.per_query_costs) == {
            "q_join", "q_scan", "w_upd", "w_del", "w_ins"
        }

    def test_explain_dml_uses_shadow(self, mixed_session):
        response = mixed_session.explain(ExplainRequest(query="w_upd"))
        assert response.query_name == "w_upd"
        assert response.sql.startswith("UPDATE sales")
        assert response.plan  # the shadow SELECT's plan
        with pytest.raises(AdvisorError, match="no read phase"):
            mixed_session.explain(ExplainRequest(query="w_ins"))

    def test_describe_reports_kinds_and_weights(self, mixed_session):
        mixed_session.set_weights({"w_del": 2.5})
        described = mixed_session.describe().to_dict()
        kinds = {entry["name"]: entry["kind"] for entry in described["queries"]}
        weights = {entry["name"]: entry["weight"] for entry in described["queries"]}
        assert kinds == {
            "q_join": "select", "q_scan": "select",
            "w_upd": "update", "w_del": "delete", "w_ins": "insert",
        }
        assert weights["w_del"] == 2.5
        assert weights["q_join"] == 1.0

    def test_dml_caches_round_trip_through_store(self, tmp_path):
        catalog = build_small_catalog()
        options = AdvisorOptions(cache_dir=str(tmp_path))
        first = TuningSession(catalog, _mixed_workload(), options=options)
        cold = first.recommend()
        assert cold.caches_built == len(_mixed_workload())
        second = TuningSession(build_small_catalog(), _mixed_workload(), options=options)
        warm = second.recommend()
        assert warm.caches_built == 0
        assert warm.caches_from_store == len(_mixed_workload())
        assert [i.key for i in warm.result.selected_indexes] == [
            i.key for i in cold.result.selected_indexes
        ]
        assert warm.result.workload_cost_after == cold.result.workload_cost_after

    def test_per_query_policy_keeps_dml_caches_warm_across_mutations(self, small_catalog):
        """Adding one read query builds exactly one cache -- DML caches stay warm."""
        session = TuningSession(
            small_catalog,
            _mixed_workload(),
            options=AdvisorOptions(candidate_policy="per_query"),
        )
        cold = session.recommend()
        assert cold.caches_built == len(_mixed_workload())
        # A new SELECT on the very table the DML statements write: the pool
        # changes, but DML cache identities (keyed by their shadow's own
        # candidates) must not.
        session.add_queries([parse_statement(
            "SELECT sales.s_product FROM sales WHERE sales.s_amount > 100 "
            "ORDER BY sales.s_product",
            name="q_new",
        )])
        warm = session.recommend()
        assert warm.caches_built == 1, (
            f"expected exactly the new query's cache, built {warm.caches_built}"
        )
        assert warm.caches_reused == len(_mixed_workload())
        # The refreshed pool still charges maintenance: heavier write weights
        # keep shrinking the recommendation.
        heavy = session.recommend(
            RecommendRequest(statement_weights={
                "w_upd": 500.0, "w_del": 500.0, "w_ins": 500.0,
            })
        )
        assert heavy.caches_built == 0
        assert len(heavy.result.selected_indexes) <= len(warm.result.selected_indexes)

    def test_per_query_policy_covers_dml_maintenance(self, small_catalog):
        session = TuningSession(
            small_catalog,
            _mixed_workload(),
            options=AdvisorOptions(candidate_policy="per_query"),
        )
        response = session.recommend(
            RecommendRequest(statement_weights={
                "w_upd": 500.0, "w_del": 500.0, "w_ins": 500.0,
            })
        )
        plain = session.recommend()
        assert len(response.result.selected_indexes) <= len(
            plain.result.selected_indexes
        )


class TestPureSelectUnchanged:
    def test_zero_weight_writes_reproduce_pure_select_recommendation(self, small_catalog):
        reads = [build_join_query("q_join"), build_simple_query("q_scan")]
        pure = TuningSession(build_small_catalog(), reads).recommend().result
        mixed = TuningSession(
            small_catalog,
            _mixed_workload(),
            options=AdvisorOptions(statement_weights={
                "w_upd": 0.0, "w_del": 0.0, "w_ins": 0.0,
            }),
        ).recommend().result
        assert [i.key for i in mixed.selected_indexes] == [
            i.key for i in pure.selected_indexes
        ]
        assert mixed.candidates_pruned_for_writes == 0

    def test_pure_select_costs_are_bit_identical_with_unit_weights(self, small_catalog):
        reads = [build_join_query("q_join"), build_simple_query("q_scan")]
        plain = TuningSession(build_small_catalog(), reads).recommend().result
        weighted = TuningSession(
            small_catalog, reads,
            options=AdvisorOptions(statement_weights={"q_join": 1.0, "q_scan": 1.0}),
        ).recommend().result
        assert weighted.workload_cost_before == plain.workload_cost_before
        assert weighted.workload_cost_after == plain.workload_cost_after
        assert [i.key for i in weighted.selected_indexes] == [
            i.key for i in plain.selected_indexes
        ]
