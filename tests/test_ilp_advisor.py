"""End-to-end tests of the ``"ilp"`` selector across the advisor surfaces.

Acceptance criteria of the ILP subsystem:

* on the golden fig-7 workload (star schema, seed 7, 60 candidates, 5 GB)
  the solver proves optimality -- gap 0 -- within the default time limit,
  and its configuration is at least as good as lazy-greedy's (here it is
  strictly better: the greedy pick sequence is provably sub-optimal),
* on randomized workloads, read-only and mixed, the ILP total benefit is
  never below lazy-greedy's, whatever the time limit (warm start), and
* the gap/time-limit knobs flow through options, requests, the serve
  protocol and the CLI, with the shared telemetry reporting the gap.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.advisor.advisor import AdvisorOptions, AdvisorResult
from repro.api.requests import RecommendRequest
from repro.api.serve import ServeFrontend
from repro.api.session import TuningSession
from repro.cli import main
from repro.util.errors import AdvisorError
from repro.util.units import gigabytes

#: The golden fig-7 configuration (matches tests/test_golden_recommend.py).
FIG7_MAX_CANDIDATES = 60
FIG7_BUDGET = gigabytes(5)
#: Lazy-greedy's fig-7 workload cost after tuning (the golden value).
FIG7_LAZY_COST_AFTER = 11556761.796832442


def _session(star_workload, statements=None, **option_overrides):
    option_overrides.setdefault("space_budget_bytes", FIG7_BUDGET)
    option_overrides.setdefault("max_candidates", FIG7_MAX_CANDIDATES)
    options = AdvisorOptions(**option_overrides)
    return TuningSession(
        star_workload.catalog(),
        statements if statements is not None else star_workload.queries(),
        options=options,
    )


class TestFig7Acceptance:
    def test_ilp_proves_optimality_and_beats_lazy_greedy(self, star_workload):
        session = _session(star_workload, selector="ilp")
        result = session.recommend().result

        # Proof: gap 0 within the default time limit.
        assert result.optimality_gap == 0.0
        assert result.selector == "ilp"
        assert result.nodes_explored > 0
        # Never worse than lazy-greedy -- and on fig-7 strictly better,
        # which is the whole point of the solver: the greedy pick sequence
        # is provably sub-optimal under the 5 GB knapsack.
        assert result.workload_cost_after < FIG7_LAZY_COST_AFTER
        assert result.incumbent_source == "solver"
        assert result.total_index_bytes <= FIG7_BUDGET
        assert result.optimality_gap_text() == "0.00% (proved optimal)"

    def test_time_limited_run_reports_valid_gap_and_keeps_warm_start(
        self, star_workload
    ):
        session = _session(star_workload, selector="ilp", ilp_time_limit=0.0)
        result = session.recommend().result
        assert result.workload_cost_after <= FIG7_LAZY_COST_AFTER * (1 + 1e-9)
        assert result.optimality_gap is not None
        assert 0.0 <= result.optimality_gap <= 1.0

    def test_greedy_selectors_report_no_gap(self, star_workload):
        session = _session(star_workload, selector="lazy")
        result = session.recommend().result
        assert result.optimality_gap is None
        assert result.nodes_explored == 0
        assert result.incumbent_source == "n/a"
        assert "n/a (heuristic selector" in result.optimality_gap_text()
        assert "optimality gap" in result.summary()


class TestIlpNeverWorseThanLazy:
    @pytest.mark.parametrize("seed", [2, 9])
    def test_read_only_random_subsets(self, star_workload, seed):
        rng = random.Random(seed)
        statements = rng.sample(star_workload.queries(), 5)
        costs = {}
        for selector in ("lazy", "ilp"):
            session = _session(
                star_workload,
                statements=statements,
                selector=selector,
                max_candidates=rng.choice([20, 30]),
                ilp_time_limit=10.0,
            )
            costs[selector] = session.recommend().result.workload_cost_after
        assert costs["ilp"] <= costs["lazy"] * (1 + 1e-9)

    def test_mixed_workload(self, star_workload):
        mixed = star_workload.mixed(read_fraction=0.6)
        costs = {}
        for selector in ("lazy", "ilp"):
            session = _session(
                star_workload,
                statements=mixed.statements,
                selector=selector,
                max_candidates=30,
                statement_weights=mixed.weights,
                ilp_time_limit=10.0,
            )
            result = session.recommend().result
            costs[selector] = result.workload_cost_after
            if selector == "ilp":
                assert result.optimality_gap is not None
                assert 0.0 <= result.optimality_gap <= 1.0
        assert costs["ilp"] <= costs["lazy"] * (1 + 1e-9)


class TestOptionPlumbing:
    def test_request_overrides_select_the_solver(self, star_workload):
        session = _session(star_workload)  # session default: lazy
        response = session.recommend(
            RecommendRequest(selector="ilp", ilp_gap=0.5, ilp_time_limit=5.0)
        )
        result = response.result
        assert result.selector == "ilp"
        assert result.optimality_gap is not None
        assert result.optimality_gap <= 0.5 + 1e-12
        payload = response.to_dict()
        assert payload["optimality_gap"] == result.optimality_gap
        assert payload["nodes_explored"] == result.nodes_explored
        assert payload["incumbent_source"] == result.incumbent_source

    def test_validation_names_offending_fields(self):
        with pytest.raises(AdvisorError, match="space_budget_bytes must be > 0"):
            AdvisorOptions(space_budget_bytes=0)
        with pytest.raises(AdvisorError, match="ilp_gap"):
            AdvisorOptions(ilp_gap=-0.5)
        with pytest.raises(AdvisorError, match="ilp_time_limit"):
            AdvisorOptions(ilp_time_limit=-3)
        with pytest.raises(AdvisorError, match="ilp_gap.*ilp_time_limit"):
            AdvisorOptions(ilp_gap=-1, ilp_time_limit=-1)
        with pytest.raises(AdvisorError, match="space_budget_bytes"):
            RecommendRequest(space_budget_bytes=-5)
        with pytest.raises(AdvisorError, match="ilp_gap"):
            RecommendRequest(ilp_gap=-0.1)
        with pytest.raises(AdvisorError, match="ilp_time_limit"):
            RecommendRequest(ilp_time_limit=-1.0)
        assert RecommendRequest(ilp_time_limit=None).ilp_time_limit is None
        assert AdvisorOptions(ilp_time_limit=None).ilp_time_limit is None

    def test_ilp_requires_a_cache_backed_cost_model(self):
        with pytest.raises(AdvisorError, match="cache-backed"):
            AdvisorOptions(selector="ilp", cost_model="optimizer")


class TestServeSurface:
    def test_recommend_and_stats_carry_the_gap(self, tmp_path):
        frontend = ServeFrontend(default_catalog="star")
        response = json.loads(frontend.handle_line(json.dumps({
            "id": 1,
            "op": "recommend",
            "params": {"selector": "ilp", "max_candidates": 20,
                       "ilp_time_limit": 10.0},
        })))
        assert response["ok"] is True
        assert response["result"]["optimality_gap"] == 0.0
        assert response["result"]["incumbent_source"] in ("lazy-greedy", "solver")

        stats = json.loads(frontend.handle_line(json.dumps({"id": 2, "op": "stats"})))
        last = stats["result"]["last_recommend"]
        assert last["selector"] == "ilp"
        assert last["optimality_gap"] == 0.0
        assert last["optimality_gap_text"] == "0.00% (proved optimal)"

    def test_stats_report_na_for_greedy(self):
        frontend = ServeFrontend(default_catalog="star")
        frontend.handle_line(json.dumps({
            "id": 1, "op": "recommend", "params": {"max_candidates": 12},
        }))
        stats = json.loads(frontend.handle_line(json.dumps({"id": 2, "op": "stats"})))
        last = stats["result"]["last_recommend"]
        assert last["selector"] == "lazy"
        assert last["optimality_gap"] is None
        assert "n/a" in last["optimality_gap_text"]

    def test_bad_ilp_params_answered_as_errors(self):
        frontend = ServeFrontend(default_catalog="star")
        response = json.loads(frontend.handle_line(json.dumps({
            "id": 3, "op": "recommend", "params": {"ilp_gap": -1},
        })))
        assert response["ok"] is False
        assert "ilp_gap" in response["error"]["message"]


class TestCli:
    def test_recommend_selector_ilp(self, capsys):
        exit_code = main([
            "recommend", "--catalog", "star", "--max-candidates", "20",
            "--selector", "ilp", "--gap", "0", "--time-limit", "30",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "proved optimal" in output
        assert "ilp solver" in output

    def test_recommend_lazy_prints_na_gap(self, capsys):
        exit_code = main([
            "recommend", "--catalog", "star", "--max-candidates", "12",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "optimality gap" in output
        assert "n/a (heuristic selector" in output

    def test_invalid_gap_flag_fails_cleanly(self, capsys):
        exit_code = main([
            "recommend", "--catalog", "star", "--selector", "ilp", "--gap", "-2",
        ])
        assert exit_code == 2
        assert "ilp_gap" in capsys.readouterr().err


class TestStepReporting:
    def test_solver_improvement_is_reported_as_ordered_steps(self, star_workload):
        session = _session(star_workload, selector="ilp")
        result = session.recommend().result
        # The solver beat the warm start, so the steps were re-derived by
        # marginal benefit; they must cover exactly the selected set and
        # their cumulative sizes must stay within the budget.
        assert {step.chosen.key for step in result.steps} == {
            index.key for index in result.selected_indexes
        }
        assert result.steps[-1].cumulative_size_bytes == result.total_index_bytes
        assert result.steps[-1].cumulative_size_bytes <= FIG7_BUDGET
        assert result.steps[-1].workload_cost_after == pytest.approx(
            result.workload_cost_after, rel=1e-9
        )


def test_advisor_result_defaults_stay_heuristic():
    result = AdvisorResult(
        selected_indexes=[], steps=[], candidate_count=0,
        workload_cost_before=1.0, workload_cost_after=1.0,
        per_query_cost_before={}, per_query_cost_after={}, total_index_bytes=0,
    )
    assert result.optimality_gap is None
    assert result.incumbent_source == "n/a"
