"""Shared fixtures for the test suite.

Most tests run against a small hand-built schema (two dimension tables and a
fact table with a few thousand statistical rows) so individual tests stay
fast; workload-level tests use session-scoped fixtures for the paper's
star-schema and TPC-H-like catalogs, which are more expensive to plan
against.
"""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, Column, ColumnType, ForeignKey, Index, Table, TableStatistics
from repro.optimizer import Optimizer
from repro.query import QueryBuilder
from repro.workloads import StarSchemaWorkload
from repro.workloads.tpch_like import build_tpch_like_catalog


def build_small_catalog() -> Catalog:
    """A three-table star: sales -> customers, sales -> products."""
    catalog = Catalog("small")
    customers = Table(
        "customers",
        [
            Column("c_id", ColumnType.BIGINT),
            Column("c_region", ColumnType.INTEGER),
            Column("c_age", ColumnType.INTEGER),
        ],
        primary_key="c_id",
    )
    products = Table(
        "products",
        [
            Column("p_id", ColumnType.BIGINT),
            Column("p_category", ColumnType.INTEGER),
            Column("p_price", ColumnType.FLOAT),
        ],
        primary_key="p_id",
    )
    sales = Table(
        "sales",
        [
            Column("s_id", ColumnType.BIGINT),
            Column("s_customer", ColumnType.BIGINT),
            Column("s_product", ColumnType.BIGINT),
            Column("s_amount", ColumnType.FLOAT),
            Column("s_quantity", ColumnType.INTEGER),
        ],
        primary_key="s_id",
        foreign_keys=[
            ForeignKey("s_customer", "customers", "c_id"),
            ForeignKey("s_product", "products", "p_id"),
        ],
    )
    catalog.add_table(customers, TableStatistics.uniform(customers, 20_000))
    catalog.add_table(products, TableStatistics.uniform(products, 5_000))
    catalog.add_table(sales, TableStatistics.uniform(sales, 500_000))
    catalog.validate()
    return catalog


def build_join_query(name: str = "sales_by_region"):
    """A two-join query with a filter, grouping and ordering."""
    return (
        QueryBuilder(name)
        .select("customers.c_region")
        .aggregate("sum", "sales.s_amount")
        .join("sales.s_customer", "customers.c_id")
        .join("sales.s_product", "products.p_id")
        .where_between("products.p_category", 10, 60)
        .group_by("customers.c_region")
        .order_by("customers.c_region")
        .build()
    )


def build_simple_query(name: str = "simple_scan"):
    """A single-table filtered scan with ordering."""
    return (
        QueryBuilder(name)
        .select("sales.s_amount", "sales.s_quantity")
        .from_tables("sales")
        .where("sales.s_quantity", "<=", 5_000)
        .order_by("sales.s_customer")
        .build()
    )


@pytest.fixture
def small_catalog() -> Catalog:
    """A fresh small catalog per test (mutable: tests may add indexes)."""
    return build_small_catalog()


@pytest.fixture
def join_query():
    """The standard two-join test query."""
    return build_join_query()


@pytest.fixture
def simple_query():
    """The standard single-table test query."""
    return build_simple_query()


@pytest.fixture
def optimizer(small_catalog) -> Optimizer:
    """An optimizer over the small catalog."""
    return Optimizer(small_catalog)


@pytest.fixture(scope="session")
def star_workload() -> StarSchemaWorkload:
    """The paper's synthetic star-schema workload (built once per session)."""
    return StarSchemaWorkload(seed=7)


@pytest.fixture(scope="session")
def tpch_catalog() -> Catalog:
    """The TPC-H-like catalog (built once per session)."""
    return build_tpch_like_catalog()


@pytest.fixture
def sample_index() -> Index:
    """A hypothetical index on the sales fact table's customer column."""
    return Index(table="sales", columns=["s_customer"], hypothetical=True)
