"""Tests for the plugin registries and eager option validation."""

import pytest

from repro.advisor import AdvisorOptions
from repro.api.registry import (
    CACHE_BUILDERS,
    CANDIDATE_POLICIES,
    COST_MODELS,
    ENGINES,
    SELECTORS,
    EngineSpec,
    Registry,
)
from repro.inum.workload_builder import WorkloadBuilderOptions
from repro.util.errors import AdvisorError, ReproError


class TestRegistry:
    def test_builtin_names_are_listed(self):
        assert set(COST_MODELS.names()) == {"pinum", "inum", "optimizer"}
        assert set(SELECTORS.names()) == {"lazy", "exhaustive", "ilp"}
        assert set(ENGINES.names()) == {"auto", "arena", "numpy", "python", "scalar"}
        assert set(CACHE_BUILDERS.names()) == {"pinum", "inum"}
        assert set(CANDIDATE_POLICIES.names()) == {"workload", "per_query"}

    def test_unknown_name_lists_registered_choices(self):
        with pytest.raises(
            AdvisorError, match=r"unknown selector 'random'.*'exhaustive', 'ilp', 'lazy'"
        ):
            SELECTORS.validate("random")

    def test_get_resolves_lazy_builtins(self):
        from repro.advisor.lazy_greedy import build_lazy_selector
        from repro.pinum.cache_builder import PinumCacheBuilder

        assert SELECTORS.get("lazy") is build_lazy_selector
        assert CACHE_BUILDERS.get("pinum") is PinumCacheBuilder

    def test_register_and_unregister(self):
        registry = Registry("demo")
        registry.register("thing", 42)
        assert registry.get("thing") == 42
        assert "thing" in registry
        registry.unregister("thing")
        assert "thing" not in registry

    def test_register_decorator_form(self):
        registry = Registry("demo")

        @registry.register("fn")
        def factory():
            return "built"

        assert registry.get("fn") is factory

    def test_duplicate_registration_rejected_without_replace(self):
        registry = Registry("demo")
        registry.register("name", 1)
        with pytest.raises(AdvisorError, match="already registered"):
            registry.register("name", 2)
        registry.register("name", 2, replace=True)
        assert registry.get("name") == 2

    def test_builtin_cannot_be_shadowed_silently(self):
        with pytest.raises(AdvisorError, match="already registered"):
            SELECTORS.register("lazy", object())

    def test_engine_spec_availability(self):
        spec = EngineSpec("broken", availability=lambda: "not here")
        with pytest.raises(AdvisorError, match="not here"):
            spec.ensure_available()
        EngineSpec("fine").ensure_available()


class TestEagerOptionValidation:
    """Unknown names fail at options-construction time, listing choices."""

    def test_unknown_cost_model(self):
        with pytest.raises(AdvisorError, match=r"unknown cost model 'magic'.*'pinum'"):
            AdvisorOptions(cost_model="magic")

    def test_unknown_selector(self):
        with pytest.raises(AdvisorError, match=r"unknown selector 'random'.*'lazy'"):
            AdvisorOptions(selector="random")

    def test_unknown_engine(self):
        with pytest.raises(AdvisorError, match=r"unknown evaluation engine 'gpu'.*'numpy'"):
            AdvisorOptions(engine="gpu")

    def test_unknown_candidate_policy(self):
        with pytest.raises(AdvisorError, match=r"unknown candidate policy 'all'.*'per_query'"):
            AdvisorOptions(candidate_policy="all")

    def test_valid_options_construct(self):
        options = AdvisorOptions(
            cost_model="inum", selector="exhaustive", engine="scalar",
            candidate_policy="per_query",
        )
        assert options.cost_model == "inum"

    def test_workload_builder_unknown_builder_lists_choices(self):
        with pytest.raises(ReproError, match=r"unknown cache builder 'magic'.*'inum', 'pinum'"):
            WorkloadBuilderOptions(builder="magic")

    def test_registered_plugin_name_passes_validation(self):
        COST_MODELS.register("custom-model", lambda request: None)
        try:
            options = AdvisorOptions(cost_model="custom-model")
            assert options.cost_model == "custom-model"
        finally:
            COST_MODELS.unregister("custom-model")
        with pytest.raises(AdvisorError):
            AdvisorOptions(cost_model="custom-model")
