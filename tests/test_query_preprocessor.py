"""Tests for the query preprocessor."""

import pytest

from repro.query import QueryBuilder, QueryPreprocessor
from repro.util.errors import QueryError


class TestValidation:
    def test_valid_query_passes(self, small_catalog, join_query):
        prepared = QueryPreprocessor(small_catalog).preprocess(join_query)
        assert set(prepared.tables) == set(join_query.tables)

    def test_unknown_table_rejected(self, small_catalog):
        query = QueryBuilder("q").select("ghost.a").from_tables("ghost").build()
        with pytest.raises(QueryError):
            QueryPreprocessor(small_catalog).preprocess(query)

    def test_unknown_column_rejected(self, small_catalog):
        query = QueryBuilder("q").select("sales.nonexistent").from_tables("sales").build()
        with pytest.raises(QueryError):
            QueryPreprocessor(small_catalog).preprocess(query)

    def test_disconnected_join_graph_rejected(self, small_catalog):
        query = (
            QueryBuilder("q")
            .select("sales.s_amount", "products.p_price")
            .from_tables("sales", "products")
            .build()
        )
        with pytest.raises(QueryError):
            QueryPreprocessor(small_catalog).preprocess(query)

    def test_single_table_never_disconnected(self, small_catalog, simple_query):
        prepared = QueryPreprocessor(small_catalog).preprocess(simple_query)
        assert prepared.tables == ("sales",)


class TestNormalisation:
    def test_tables_sorted(self, small_catalog, join_query):
        prepared = QueryPreprocessor(small_catalog).preprocess(join_query)
        assert list(prepared.tables) == sorted(prepared.tables)

    def test_duplicate_filters_removed(self, small_catalog):
        query = (
            QueryBuilder("q")
            .select("sales.s_amount")
            .from_tables("sales")
            .where("sales.s_quantity", "<", 10)
            .where("sales.s_quantity", "<", 10)
            .build()
        )
        prepared = QueryPreprocessor(small_catalog).preprocess(query)
        assert len(prepared.filters) == 1

    def test_duplicate_joins_removed(self, small_catalog):
        query = (
            QueryBuilder("q")
            .select("sales.s_amount")
            .join("sales.s_customer", "customers.c_id")
            .join("customers.c_id", "sales.s_customer")
            .build()
        )
        prepared = QueryPreprocessor(small_catalog).preprocess(query)
        assert len(prepared.joins) == 1

    def test_clauses_preserved(self, small_catalog, join_query):
        prepared = QueryPreprocessor(small_catalog).preprocess(join_query)
        assert prepared.group_by == join_query.group_by
        assert prepared.order_by == join_query.order_by
        assert prepared.aggregates == join_query.aggregates
