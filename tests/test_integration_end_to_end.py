"""End-to-end integration tests exercising the whole pipeline on the paper's
workloads: star-schema cache construction, cost-model accuracy, the TPC-H-like
redundancy observation and the advisor-to-executor loop."""

from repro.advisor import AdvisorOptions, CandidateGenerator, IndexAdvisor
from repro.executor import PlanExecutor
from repro.inum import AtomicConfiguration, InumCacheBuilder, InumCostModel
from repro.optimizer import Optimizer
from repro.optimizer.whatif import WhatIfOptimizer
from repro.pinum import PinumCacheBuilder, PinumCostModel
from repro.util.rng import DeterministicRNG
from repro.util.units import gigabytes, megabytes
from repro.workloads.tpch_like import build_tpch_like_catalog, tpch_small_join_query


class TestStarSchemaPipeline:
    def test_pinum_cache_much_cheaper_and_as_accurate_as_inum(self, star_workload):
        """The paper's core claim on one mid-size star query."""
        catalog = star_workload.catalog()
        optimizer = Optimizer(catalog)
        query = star_workload.queries()[2]  # 4-way join
        candidates = CandidateGenerator(catalog).for_query(query)

        pinum_cache = PinumCacheBuilder(optimizer).build_cache(query, candidates)
        inum_cache = InumCacheBuilder(optimizer).build_cache(query, candidates)

        # Calls: constant for PINUM, per-IOC plus per-candidate for INUM.
        assert pinum_cache.build_stats.optimizer_calls_total <= 3
        assert inum_cache.build_stats.optimizer_calls_total > 10 * (
            pinum_cache.build_stats.optimizer_calls_total
        )

        # Accuracy against the optimizer on random atomic configurations.
        whatif = WhatIfOptimizer(optimizer)
        pinum_model = PinumCostModel(pinum_cache)
        inum_model = InumCostModel(inum_cache)
        rng = DeterministicRNG(17)
        per_table = {}
        for candidate in candidates:
            per_table.setdefault(candidate.table, []).append(candidate)
        errors_pinum = []
        errors_inum = []
        for _ in range(15):
            chosen = [rng.choice(indexes) for table, indexes in per_table.items()
                      if rng.random() < 0.7]
            configuration = AtomicConfiguration(chosen)
            actual = whatif.cost_with_configuration(query, configuration.indexes)
            errors_pinum.append(abs(pinum_model.estimate(configuration) - actual) / actual)
            errors_inum.append(abs(inum_model.estimate(configuration) - actual) / actual)
        assert sum(errors_pinum) / len(errors_pinum) < 0.10
        assert sum(errors_inum) / len(errors_inum) < 0.10

    def test_advisor_speeds_up_workload_cost(self, star_workload):
        catalog = star_workload.catalog()
        optimizer = Optimizer(catalog)
        queries = star_workload.queries()[:3]
        advisor = IndexAdvisor(
            catalog,
            optimizer,
            AdvisorOptions(space_budget_bytes=gigabytes(5), cost_model="pinum",
                           max_candidates=60),
        )
        result = advisor.recommend(queries)
        assert result.improvement_fraction > 0.3
        assert result.total_index_bytes <= gigabytes(5)

    def test_advisor_result_verified_by_executor(self):
        """Figure-7 style loop: recommend indexes, execute before and after.

        Uses a private workload instance because analysing the scaled-down
        data and materializing the recommendation mutate the catalog, and the
        session-scoped fixture must stay pristine for other tests.
        """
        from repro.workloads import StarSchemaWorkload

        workload = StarSchemaWorkload(seed=7)
        catalog = workload.catalog()
        database = workload.database(scale=0.0002)
        database.analyze()  # plan against the scaled-down reality
        optimizer = Optimizer(catalog)
        queries = workload.queries()[:2]

        advisor = IndexAdvisor(
            catalog,
            optimizer,
            AdvisorOptions(space_budget_bytes=megabytes(64), cost_model="pinum",
                           max_candidates=40),
        )
        recommendation = advisor.recommend(queries)

        def run_workload() -> float:
            total = 0.0
            for query in queries:
                plan = optimizer.optimize(query).plan
                total += PlanExecutor(database, query).execute(plan).simulated_milliseconds
            return total

        before_ms = run_workload()
        for index in recommendation.selected_indexes:
            catalog.add_index(index.materialized())
        after_ms = run_workload()
        assert after_ms <= before_ms * 1.05  # never meaningfully worse


class TestTpchRedundancy:
    def test_one_hooked_call_covers_many_combinations(self):
        """Section IV in miniature: one call yields every useful per-IOC plan."""
        catalog = build_tpch_like_catalog(scale_factor=0.01)
        optimizer = Optimizer(catalog)
        query = tpch_small_join_query()
        cache = PinumCacheBuilder(optimizer).build_cache(query)
        assert cache.build_stats.optimizer_calls_plans == 2
        assert cache.entry_count >= 1
        assert cache.unique_plan_count() <= cache.entry_count
