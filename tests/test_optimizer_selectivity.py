"""Tests for selectivity and cardinality estimation."""

import pytest

from repro.optimizer.selectivity import SelectivityEstimator
from repro.query import QueryBuilder
from repro.query.ast import ColumnRef, Comparison, Predicate


@pytest.fixture
def estimator(small_catalog):
    return SelectivityEstimator(small_catalog)


class TestPredicateSelectivity:
    def test_equality_uses_ndv(self, estimator, small_catalog):
        predicate = Predicate(ColumnRef("customers", "c_id"), Comparison.EQ, 5)
        expected = 1.0 / small_catalog.statistics("customers").distinct_values("c_id")
        assert estimator.predicate_selectivity(predicate) == pytest.approx(expected, rel=0.01)

    def test_range_uses_histogram(self, estimator, small_catalog):
        stats = small_catalog.statistics("customers").column("c_age")
        span = stats.max_value - stats.min_value
        predicate = Predicate(
            ColumnRef("customers", "c_age"), Comparison.BETWEEN,
            stats.min_value, stats.min_value + span * 0.1,
        )
        assert estimator.predicate_selectivity(predicate) == pytest.approx(0.1, abs=0.05)

    def test_open_ranges(self, estimator, small_catalog):
        stats = small_catalog.statistics("customers").column("c_age")
        midpoint = (stats.min_value + stats.max_value) / 2
        below = Predicate(ColumnRef("customers", "c_age"), Comparison.LE, midpoint)
        above = Predicate(ColumnRef("customers", "c_age"), Comparison.GE, midpoint)
        total = estimator.predicate_selectivity(below) + estimator.predicate_selectivity(above)
        assert total == pytest.approx(1.0, abs=0.1)

    def test_not_equal_complements_equality(self, estimator):
        eq = Predicate(ColumnRef("customers", "c_region"), Comparison.EQ, 5)
        ne = Predicate(ColumnRef("customers", "c_region"), Comparison.NE, 5)
        assert estimator.predicate_selectivity(eq) + estimator.predicate_selectivity(ne) == pytest.approx(1.0)

    def test_selectivity_clamped_to_valid_range(self, estimator):
        predicate = Predicate(ColumnRef("customers", "c_age"), Comparison.BETWEEN, -100, -50)
        assert 0 < estimator.predicate_selectivity(predicate) <= 1


class TestTableCardinality:
    def test_no_filters_full_cardinality(self, estimator, small_catalog, join_query):
        assert estimator.table_rows(join_query, "sales") == pytest.approx(
            small_catalog.statistics("sales").row_count
        )

    def test_filters_reduce_cardinality(self, estimator, small_catalog, join_query):
        filtered = estimator.table_rows(join_query, "products")
        assert filtered < small_catalog.statistics("products").row_count

    def test_independence_multiplies(self, estimator, small_catalog):
        query = (
            QueryBuilder("q")
            .select("sales.s_amount")
            .from_tables("sales")
            .where("sales.s_quantity", "<=", 100_000)
            .where("sales.s_customer", "<=", 250_000)
            .build()
        )
        single_a = estimator.predicate_selectivity(query.filters[0])
        single_b = estimator.predicate_selectivity(query.filters[1])
        assert estimator.table_selectivity(query, "sales") == pytest.approx(single_a * single_b)


class TestJoinEstimation:
    def test_join_selectivity_uses_larger_ndv(self, estimator, join_query, small_catalog):
        join = join_query.joins[0]
        selectivity = estimator.join_selectivity(join)
        larger_ndv = max(
            small_catalog.statistics("sales").distinct_values("s_customer"),
            small_catalog.statistics("customers").distinct_values("c_id"),
        )
        assert selectivity == pytest.approx(1.0 / larger_ndv)

    def test_join_result_not_larger_than_cartesian(self, estimator, join_query):
        tables = frozenset({"sales", "customers"})
        joined = estimator.join_result_rows(join_query, tables)
        cartesian = estimator.table_rows(join_query, "sales") * estimator.table_rows(
            join_query, "customers"
        )
        assert joined <= cartesian

    def test_full_join_result_positive(self, estimator, join_query):
        assert estimator.join_result_rows(join_query, frozenset(join_query.tables)) >= 1.0


class TestGroupsAndWidths:
    def test_group_count_capped_by_input(self, estimator, join_query):
        assert estimator.group_count(join_query, input_rows=10) <= 10

    def test_group_count_without_group_by_is_one(self, estimator, simple_query):
        assert estimator.group_count(simple_query, 1000) == 1.0

    def test_output_row_width_positive(self, estimator, join_query):
        assert estimator.output_row_width(join_query, join_query.tables) >= 8

    def test_filtered_rows_by_table_has_all_tables(self, estimator, join_query):
        rows = estimator.filtered_rows_by_table(join_query)
        assert set(rows) == set(join_query.tables)
